// Multi-tenant front-door suite: weighted-fair admission (FairScheduler),
// SLO-aware overload control (priority shedding, circuit breaker), and
// crash-tolerant streaming sessions (StreamingSession).
//
// The two contracts under test:
//   - Fairness is policy, results are physics: deficit-round-robin may
//     reorder and shed, but every completed result stays bitwise identical
//     to the serial reference, and `completed + failed == submitted` holds
//     per tenant as well as globally.
//   - Sessions carry neuron state across chunks and across engine respawns:
//     a mid-session crash loses only the in-flight chunk, and the chunks
//     around it are bitwise identical to an undisturbed session.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <tuple>
#include <vector>

#include "common/fault_injection.h"
#include "core/engine.h"
#include "data/synthetic.h"
#include "ecnn/batch_runner.h"
#include "ecnn/engine_pool.h"
#include "ecnn/runner.h"
#include "serve/bounded_queue.h"
#include "serve/registry.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/session.h"
#include "test_util.h"

namespace sne {
namespace {

using core::SneConfig;
using core::SneEngine;
using ecnn::NetworkRunStats;
using ecnn::QuantizedLayerSpec;
using ecnn::QuantizedNetwork;
using serve::FairScheduler;
using serve::TenantConfig;
using serve::TenantStats;

QuantizedLayerSpec conv_layer(std::uint16_t in_ch, std::uint16_t size,
                              std::uint16_t out_ch, std::int32_t v_th,
                              std::uint64_t seed) {
  QuantizedLayerSpec l;
  l.type = ecnn::LayerSpec::Type::kConv;
  l.name = "conv";
  l.in_ch = in_ch;
  l.in_w = size;
  l.in_h = size;
  l.out_ch = out_ch;
  l.kernel = 3;
  l.stride = 1;
  l.pad = 1;
  l.weights.resize(static_cast<std::size_t>(out_ch) * in_ch * 9);
  Rng rng(seed);
  for (auto& w : l.weights) w = static_cast<std::int8_t>(rng.uniform_int(-4, 7));
  l.lif.v_th = v_th;
  l.lif.leak = 1;
  return l;
}

QuantizedLayerSpec pool_layer(std::uint16_t ch, std::uint16_t size) {
  QuantizedLayerSpec l;
  l.type = ecnn::LayerSpec::Type::kPool;
  l.name = "pool";
  l.in_ch = ch;
  l.in_w = size;
  l.in_h = size;
  l.out_ch = ch;
  l.kernel = 2;
  l.stride = 2;
  l.pad = 0;
  l.lif.v_th = 0;
  l.lif.leak = 0;
  return l;
}

QuantizedLayerSpec fc_layer(std::uint16_t in_ch, std::uint16_t size,
                            std::uint16_t outputs, std::uint64_t seed) {
  QuantizedLayerSpec l;
  l.type = ecnn::LayerSpec::Type::kFc;
  l.name = "fc";
  l.in_ch = in_ch;
  l.in_w = size;
  l.in_h = size;
  l.out_ch = outputs;
  l.weights.resize(static_cast<std::size_t>(outputs) * l.in_flat());
  Rng rng(seed);
  for (auto& w : l.weights) w = static_cast<std::int8_t>(rng.uniform_int(-7, 7));
  l.lif.v_th = 6;
  l.lif.leak = 1;
  return l;
}

QuantizedNetwork three_layer_net() {
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(1, 16, 8, 4, 11));
  net.layers.push_back(pool_layer(8, 16));
  net.layers.push_back(fc_layer(8, 8, 10, 13));
  return net;
}

/// Small fast model for load tests (single conv, 8x8, 4 timesteps inputs).
QuantizedNetwork tiny_net() {
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(1, 8, 2, 4, 21));
  return net;
}

/// conv -> conv chain that fits pipeline operating mode on the 2-slice
/// design point (single round / single pass per layer).
QuantizedNetwork pipeline_net() {
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(1, 16, 2, 4, 31));
  auto l2 = conv_layer(2, 16, 2, 5, 32);
  l2.name = "conv2";
  net.layers.push_back(l2);
  return net;
}

void expect_equivalent(const NetworkRunStats& ref, const NetworkRunStats& got) {
  EXPECT_EQ(ref.cycles, got.cycles);
  EXPECT_TRUE(ref.total == got.total)
      << "counters diverge:\nref: " << ref.total << "\ngot: " << got.total;
  ASSERT_EQ(ref.layers.size(), got.layers.size());
  for (std::size_t i = 0; i < ref.layers.size(); ++i) {
    EXPECT_EQ(ref.layers[i].cycles, got.layers[i].cycles) << "layer " << i;
    EXPECT_TRUE(ref.layers[i].counters == got.layers[i].counters)
        << "layer " << i;
    EXPECT_TRUE(ref.layers[i].output == got.layers[i].output) << "layer " << i;
  }
  EXPECT_TRUE(ref.final_output == got.final_output);
}

const TenantStats& tenant_stats(const serve::ServerStats& st,
                                const std::string& name) {
  for (const TenantStats& t : st.tenants)
    if (t.name == name) return t;
  ADD_FAILURE() << "no tenant '" << name << "' in stats";
  static const TenantStats kEmpty{};
  return kEmpty;
}

/// Sorted (t, ch, x, y) spike tuples — the order-independent functional view
/// of an output stream.
std::vector<std::tuple<int, int, int, int>> spike_set(
    const event::EventStream& s) {
  std::vector<std::tuple<int, int, int, int>> out;
  for (const event::Event& e : s.events())
    if (e.op == event::Op::kUpdate) out.emplace_back(e.t, e.ch, e.x, e.y);
  std::sort(out.begin(), out.end());
  return out;
}

/// Splits a raw stream into chunk-local pieces of `chunk_t` timesteps.
std::vector<event::EventStream> split_chunks(const event::EventStream& full,
                                             std::uint16_t chunk_t) {
  std::vector<event::EventStream> chunks;
  const std::uint16_t total = full.geometry().timesteps;
  for (std::uint16_t t0 = 0; t0 < total; t0 += chunk_t) {
    event::StreamGeometry g = full.geometry();
    g.timesteps = std::min<std::uint16_t>(chunk_t, total - t0);
    event::EventStream c(g);
    for (event::Event e : full.events())
      if (e.t >= t0 && e.t < t0 + g.timesteps) {
        e.t = static_cast<std::uint16_t>(e.t - t0);
        c.push(e);
      }
    chunks.push_back(std::move(c));
  }
  return chunks;
}

// --- BoundedQueue::push_for (timed admission) --------------------------------

TEST(BoundedQueueTest, PushForHonorsTimeoutAndClose) {
  serve::BoundedQueue<int> q(1);
  using PR = serve::BoundedQueue<int>::PushResult;
  int v = 1;
  ASSERT_EQ(q.try_push(v), PR::kAccepted);

  // Full queue: a timed push waits, then gives up instead of sleeping on.
  int w = 2;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(q.push_for(std::chrono::milliseconds(60), w), PR::kFull);
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(waited, std::chrono::milliseconds(40));
  EXPECT_EQ(w, 2);  // the item is untouched on refusal

  int out = 0;
  ASSERT_EQ(q.pop_for(std::chrono::milliseconds(10), out),
            serve::BoundedQueue<int>::PopStatus::kItem);
  EXPECT_EQ(q.push_for(std::chrono::milliseconds(10), w), PR::kAccepted);

  // A push_for parked on a full queue wakes on close with kClosed.
  int z = 3;
  std::thread closer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    q.close();
  });
  EXPECT_EQ(q.push_for(std::chrono::seconds(10), z), PR::kClosed);
  closer.join();
}

// --- FairScheduler (policy level, no engines) --------------------------------

TEST(FairSchedulerTest, DrrSharesAreExactUnderSaturation) {
  TenantConfig base;
  base.max_queue = 128;
  FairScheduler<std::pair<char, int>> sched(base);
  for (const auto& [name, w] : {std::pair<const char*, unsigned>{"a", 1},
                                {"b", 2},
                                {"c", 4}}) {
    TenantConfig cfg;
    cfg.weight = w;
    cfg.max_queue = 128;
    sched.register_tenant(name, cfg);
  }
  using Sched = FairScheduler<std::pair<char, int>>;
  for (int i = 0; i < 70; ++i)
    for (const char t : {'a', 'b', 'c'}) {
      const auto out = sched.push(std::string(1, t), {t, i}, 0, std::nullopt,
                                  /*block=*/false);
      ASSERT_EQ(out.status, Sched::PushStatus::kAccepted);
    }

  // 10 full DRR rounds drain exactly weight-proportional counts, and each
  // tenant's own queue drains in FIFO order.
  std::map<char, int> served;
  std::map<char, int> next_idx;
  for (int i = 0; i < 70; ++i) {
    Sched::Popped p;
    ASSERT_EQ(sched.pop_for(std::chrono::milliseconds(100), p),
              Sched::PopStatus::kItem);
    ++served[p.item.first];
    EXPECT_EQ(p.item.second, next_idx[p.item.first]++)
        << "tenant " << p.item.first << " served out of FIFO order";
    sched.on_done(p.tenant, {});
  }
  EXPECT_EQ(served['a'], 10);
  EXPECT_EQ(served['b'], 20);
  EXPECT_EQ(served['c'], 40);
}

TEST(FairSchedulerTest, SingleTenantDegeneratesToFifo) {
  TenantConfig base;
  base.max_queue = 64;
  FairScheduler<int> sched(base);
  // Priorities affect shedding only, never dispatch order.
  for (int i = 0; i < 20; ++i) {
    const auto out = sched.push(serve::kDefaultTenant, i, /*priority=*/i % 3,
                                std::nullopt, false);
    ASSERT_EQ(out.status, FairScheduler<int>::PushStatus::kAccepted);
  }
  for (int i = 0; i < 20; ++i) {
    FairScheduler<int>::Popped p;
    ASSERT_EQ(sched.pop_for(std::chrono::milliseconds(100), p),
              FairScheduler<int>::PopStatus::kItem);
    EXPECT_EQ(p.item, i);
    sched.on_done(p.tenant, {});
  }
  EXPECT_TRUE(sched.drained());
}

TEST(FairSchedulerTest, PriorityDisplacementNeverCrossesTenants) {
  TenantConfig base;
  FairScheduler<int> sched(base);
  TenantConfig small;
  small.max_queue = 3;
  sched.register_tenant("t", small);
  TenantConfig one;
  one.max_queue = 1;
  sched.register_tenant("u", one);
  using S = FairScheduler<int>;

  ASSERT_EQ(sched.push("u", 99, 0, std::nullopt, false).status,
            S::PushStatus::kAccepted);
  for (const int v : {1, 2, 3})
    ASSERT_EQ(sched.push("t", v, 0, std::nullopt, false).status,
              S::PushStatus::kAccepted);

  // Higher priority displaces t's own oldest lowest-priority entry...
  auto out = sched.push("t", 4, 1, std::nullopt, false);
  EXPECT_EQ(out.status, S::PushStatus::kAccepted);
  ASSERT_EQ(out.displaced.size(), 1u);
  EXPECT_EQ(out.displaced[0], 1);
  // ...equal priority displaces nothing (strictly-lower rule)...
  EXPECT_EQ(sched.push("t", 5, 0, std::nullopt, false).status,
            S::PushStatus::kFull);
  // ...and u's full queue was never a displacement candidate.
  S::Popped p;
  ASSERT_EQ(sched.pop_for(std::chrono::milliseconds(100), p),
            S::PopStatus::kItem);
  // Ring order is first-activation order: u pushed first.
  EXPECT_EQ(p.tenant, "u");
  EXPECT_EQ(p.item, 99);
  sched.on_done("u", {});

  const auto stats = sched.stats();
  for (const TenantStats& t : stats) {
    if (t.name == "t") {
      EXPECT_EQ(t.evicted, 1u);
      EXPECT_EQ(t.rejected, 1u);
    }
    if (t.name == "u") {
      EXPECT_EQ(t.evicted, 0u);
    }
  }
}

TEST(FairSchedulerTest, ExpiredEntriesAreDisplacedFirst) {
  TenantConfig base;
  base.max_queue = 2;
  FairScheduler<int> sched(base);
  using S = FairScheduler<int>;
  const auto past = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(5);
  // The expired entry loses its slot even to an equal-priority push (a
  // plain lower-priority scan would find nothing to shed here).
  ASSERT_EQ(sched.push(serve::kDefaultTenant, 1, 5, past, false).status,
            S::PushStatus::kAccepted);
  ASSERT_EQ(sched.push(serve::kDefaultTenant, 2, 5, std::nullopt, false)
                .status,
            S::PushStatus::kAccepted);
  auto out = sched.push(serve::kDefaultTenant, 3, 5, std::nullopt, false);
  EXPECT_EQ(out.status, S::PushStatus::kAccepted);
  ASSERT_EQ(out.displaced.size(), 1u);
  EXPECT_EQ(out.displaced[0], 1);
}

TEST(FairSchedulerTest, InflightCapForfeitsTurnWithoutBlockingTheRing) {
  TenantConfig base;
  FairScheduler<int> sched(base);
  TenantConfig capped;
  capped.max_inflight = 1;
  capped.max_queue = 8;
  sched.register_tenant("x", capped);
  TenantConfig plain;
  plain.max_queue = 8;
  sched.register_tenant("y", plain);
  using S = FairScheduler<int>;

  ASSERT_EQ(sched.push("x", 1, 0, std::nullopt, false).status,
            S::PushStatus::kAccepted);
  ASSERT_EQ(sched.push("x", 2, 0, std::nullopt, false).status,
            S::PushStatus::kAccepted);
  ASSERT_EQ(sched.push("y", 3, 0, std::nullopt, false).status,
            S::PushStatus::kAccepted);

  S::Popped p;
  ASSERT_EQ(sched.pop_for(std::chrono::milliseconds(50), p),
            S::PopStatus::kItem);
  EXPECT_EQ(p.item, 1);  // x first (activation order)
  // x is now at its inflight cap: its turn is forfeited, y serves.
  ASSERT_EQ(sched.pop_for(std::chrono::milliseconds(50), p),
            S::PopStatus::kItem);
  EXPECT_EQ(p.item, 3);
  sched.on_done("y", {});
  // Nothing serveable: x capped with queued work, y empty.
  EXPECT_EQ(sched.pop_for(std::chrono::milliseconds(20), p),
            S::PopStatus::kTimeout);
  // Releasing x's slot makes its queue serveable again.
  sched.on_done("x", {});
  ASSERT_EQ(sched.pop_for(std::chrono::milliseconds(50), p),
            S::PopStatus::kItem);
  EXPECT_EQ(p.item, 2);
  sched.on_done("x", {});
  EXPECT_TRUE(sched.drained());
}

TEST(FairSchedulerTest, EvictPurgesRefusesAndKeepsLedger) {
  TenantConfig base;
  FairScheduler<int> sched(base);
  TenantConfig cfg;
  cfg.max_queue = 8;
  sched.register_tenant("e", cfg);
  using S = FairScheduler<int>;
  for (const int v : {1, 2, 3})
    ASSERT_EQ(sched.push("e", v, 0, std::nullopt, false).status,
              S::PushStatus::kAccepted);

  const std::vector<int> purged = sched.evict("e");
  EXPECT_EQ(purged, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(sched.has_tenant("e"));
  EXPECT_EQ(sched.push("e", 4, 0, std::nullopt, false).status,
            S::PushStatus::kUnknownTenant);
  // Names are not recycled: the ledger must survive unambiguously.
  EXPECT_THROW(sched.register_tenant("e", cfg), ConfigError);

  for (const TenantStats& t : sched.stats())
    if (t.name == "e") {
      EXPECT_EQ(t.submitted, 3u);
      EXPECT_EQ(t.failed, 3u);
      EXPECT_EQ(t.evicted, 3u);
      EXPECT_EQ(t.queue_depth, 0u);
    }
  EXPECT_TRUE(sched.drained());  // eviction answered everything admitted
}

TEST(FairSchedulerTest, ConfigValidation) {
  TenantConfig base;
  FairScheduler<int> sched(base);
  TenantConfig bad;
  bad.weight = 0;
  EXPECT_THROW(sched.register_tenant("w", bad), ConfigError);
  bad = TenantConfig{};
  bad.max_queue = 0;
  EXPECT_THROW(sched.register_tenant("q", bad), ConfigError);
  bad = TenantConfig{};
  bad.breaker_probe_interval = 0;
  EXPECT_THROW(sched.register_tenant("p", bad), ConfigError);
  sched.register_tenant("ok", TenantConfig{});
  EXPECT_THROW(sched.register_tenant("ok", TenantConfig{}), ConfigError);
}

// --- server: fairness, isolation, accounting ---------------------------------

TEST(TenantServerTest, SaturatedSharesTrackWeights) {
  serve::ModelRegistry registry;
  registry.put("m", tiny_net());
  const SneConfig hw = SneConfig::paper_design_point(2);
  serve::ServeOptions so;
  so.engines = 1;  // one dispatcher: shares come purely from the scheduler
  so.memory_words = 1u << 20;
  serve::InferenceServer server(registry, hw, so);
  for (const auto& [name, w] : {std::pair<const char*, unsigned>{"a", 1},
                                {"b", 2},
                                {"c", 4}}) {
    TenantConfig cfg;
    cfg.weight = w;
    cfg.max_queue = 64;
    server.register_tenant(name, cfg);
  }

  // Pace every dispatch with a deterministic 4 ms stall so the queues stay
  // saturated long enough to observe mid-drain shares.
  faults::FaultConfig fc;
  fc.seed = 7;
  fc.rules.push_back({"serve.server.dispatch", {}, 1.0, /*stall_ms=*/4.0});
  faults::ScopedFaults chaos(fc);

  // Sized so that at the snapshot point (105 completions) every tenant is
  // still backlogged: the weight-4 tenant drains its last request only at
  // completion 7/4 * kPerTenant ≈ 157 — past-drain tails would otherwise
  // hand the fast tenant's share to the slow ones.
  constexpr int kPerTenant = 90;
  std::vector<serve::Ticket> tickets;
  for (int i = 0; i < kPerTenant; ++i)
    for (const char* t : {"a", "b", "c"}) {
      serve::RequestOptions ro;
      ro.tenant = t;
      tickets.push_back(server.submit(
          "m", data::random_stream({1, 8, 8, 4}, 0.1, 100 + i), ro));
    }

  // Poll for a mid-drain snapshot with >= 15 full DRR rounds completed (the
  // per-round skew bound is then 7/105 < 0.1).
  std::uint64_t ca = 0, cb = 0, cc = 0, total = 0;
  const auto poll_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  do {
    const serve::ServerStats st = server.stats();
    ca = tenant_stats(st, "a").completed;
    cb = tenant_stats(st, "b").completed;
    cc = tenant_stats(st, "c").completed;
    total = ca + cb + cc;
    if (total >= 105) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  } while (std::chrono::steady_clock::now() < poll_deadline);
  ASSERT_GE(total, 105u) << "server never reached the snapshot point";
  if (total > 3 * kPerTenant - 6) {
    // The run drained before a mid-flight snapshot could be taken (extreme
    // scheduling starvation of the polling thread); shares at full drain
    // are trivially 1/3 each and say nothing about fairness.
    GTEST_SKIP() << "machine too slow to observe a saturated snapshot";
  }
  const double share_a = static_cast<double>(ca) / static_cast<double>(total);
  const double share_b = static_cast<double>(cb) / static_cast<double>(total);
  const double share_c = static_cast<double>(cc) / static_cast<double>(total);
  EXPECT_NEAR(share_a, 1.0 / 7.0, 0.1);
  EXPECT_NEAR(share_b, 2.0 / 7.0, 0.1);
  EXPECT_NEAR(share_c, 4.0 / 7.0, 0.1);

  for (auto& t : tickets) (void)t.wait();
  server.drain();
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(3 * kPerTenant));
  for (const char* t : {"a", "b", "c"}) {
    const TenantStats& ts = tenant_stats(st, t);
    EXPECT_EQ(ts.completed, static_cast<std::uint64_t>(kPerTenant));
    EXPECT_EQ(ts.completed + ts.failed, ts.submitted) << t;
  }
}

TEST(TenantServerTest, MisbehavingTenantCannotStarveOthers) {
  serve::ModelRegistry registry;
  registry.put("m", tiny_net());
  const SneConfig hw = SneConfig::paper_design_point(2);
  serve::ServeOptions so;
  so.engines = 1;
  so.memory_words = 1u << 20;
  serve::InferenceServer server(registry, hw, so);
  TenantConfig greedy_cfg;
  greedy_cfg.weight = 1;
  greedy_cfg.max_queue = 4;  // quota: the blast radius of the flood
  server.register_tenant("greedy", greedy_cfg);
  TenantConfig polite_cfg;
  polite_cfg.weight = 1;
  polite_cfg.max_queue = 16;
  server.register_tenant("polite", polite_cfg);

  faults::FaultConfig fc;
  fc.seed = 7;
  fc.rules.push_back({"serve.server.dispatch", {}, 1.0, /*stall_ms=*/3.0});
  faults::ScopedFaults chaos(fc);

  // The misbehaving tenant: a tight submit loop mixing hopeless deadlines
  // with a queue flood. try_submit never blocks, so the loop only ever
  // burns its own quota.
  std::vector<serve::Ticket> greedy_tickets;
  std::uint64_t greedy_rejections = 0;
  const auto in = data::random_stream({1, 8, 8, 4}, 0.1, 900);
  for (int i = 0; i < 200; ++i) {
    serve::RequestOptions ro;
    ro.tenant = "greedy";
    if (i % 2 == 0)
      ro.deadline = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1);  // dead on arrival
    if (auto t = server.try_submit("m", in, ro))
      greedy_tickets.push_back(std::move(*t));
    else
      ++greedy_rejections;
  }
  // The polite tenant's traffic rides through unharmed.
  std::vector<serve::Ticket> polite_tickets;
  for (int i = 0; i < 6; ++i) {
    serve::RequestOptions ro;
    ro.tenant = "polite";
    polite_tickets.push_back(server.submit(
        "m", data::random_stream({1, 8, 8, 4}, 0.1, 950 + i), ro));
  }
  for (auto& t : polite_tickets) EXPECT_GT(t.wait().cycles, 0u);
  server.drain();

  const serve::ServerStats st = server.stats();
  const TenantStats& polite = tenant_stats(st, "polite");
  EXPECT_EQ(polite.completed, 6u);
  EXPECT_EQ(polite.failed, 0u);
  const TenantStats& greedy = tenant_stats(st, "greedy");
  EXPECT_GT(greedy_rejections, 0u);
  EXPECT_EQ(greedy.rejected, greedy_rejections);
  EXPECT_GT(greedy.shed, 0u);  // the dead-on-arrival half
  // Per-tenant drain invariant: everything admitted was answered.
  EXPECT_EQ(greedy.completed + greedy.failed, greedy.submitted);
  EXPECT_EQ(st.completed + st.failed, st.submitted);
}

TEST(TenantServerTest, SchedulingNeverChangesResults) {
  serve::ModelRegistry registry;
  registry.put("m", three_layer_net());
  const SneConfig hw = SneConfig::paper_design_point(2);

  std::vector<event::EventStream> inputs;
  for (std::uint64_t s = 0; s < 6; ++s)
    inputs.push_back(data::random_stream({1, 16, 16, 10}, 0.08, 500 + s));
  ecnn::BatchOptions bo;
  bo.memory_words = 1u << 20;
  ecnn::BatchRunner batch(hw, *registry.get("m"), bo);
  std::vector<NetworkRunStats> ref;
  for (const auto& in : inputs) ref.push_back(batch.run_one(in));

  serve::ServeOptions so;
  so.engines = 2;
  so.memory_words = 1u << 20;
  so.warm_weights = false;  // strict tier: bitwise against the cold reference
  serve::InferenceServer server(registry, hw, so);
  TenantConfig heavy;
  heavy.weight = 4;
  server.register_tenant("heavy", heavy);
  TenantConfig light;
  light.weight = 1;
  server.register_tenant("light", light);

  // Interleave tenants and priorities; whatever the scheduler decides,
  // input i's result must equal the serial reference bitwise.
  std::vector<serve::Ticket> tickets(inputs.size());
  for (std::size_t i = inputs.size(); i-- > 0;) {
    serve::RequestOptions ro;
    ro.tenant = (i % 3 == 0) ? serve::kDefaultTenant
                             : (i % 3 == 1 ? "heavy" : "light");
    ro.priority = static_cast<int>(i % 2);
    tickets[i] = server.submit("m", inputs[i], ro);
  }
  for (std::size_t i = 0; i < inputs.size(); ++i)
    expect_equivalent(ref[i], tickets[i].wait());
  server.drain();
  const serve::ServerStats st = server.stats();
  EXPECT_EQ(st.completed, inputs.size());
  for (const TenantStats& t : st.tenants)
    EXPECT_EQ(t.completed + t.failed, t.submitted) << t.name;
}

TEST(TenantServerTest, UnknownTenantIsAConfigError) {
  serve::ModelRegistry registry;
  registry.put("m", tiny_net());
  serve::ServeOptions so;
  so.engines = 1;
  so.memory_words = 1u << 20;
  serve::InferenceServer server(registry, SneConfig::paper_design_point(2),
                                so);
  serve::RequestOptions ro;
  ro.tenant = "ghost";
  EXPECT_THROW(
      server.submit("m", data::random_stream({1, 8, 8, 4}, 0.1, 1), ro),
      ConfigError);
}

// --- circuit breaker ---------------------------------------------------------

TEST(TenantServerTest, BreakerTripsProbesAndRecoversDeterministically) {
  serve::ModelRegistry registry;
  registry.put("m", tiny_net());
  const SneConfig hw = SneConfig::paper_design_point(2);
  serve::ServeOptions so;
  so.engines = 1;       // serialize dispatch: the event order is the test
  so.retry_budget = 0;  // every injected fault fails its ticket
  so.memory_words = 1u << 20;
  serve::InferenceServer server(registry, hw, so);
  TenantConfig frail;
  frail.breaker_failure_threshold = 3;
  frail.breaker_probe_interval = 4;
  server.register_tenant("frail", frail);

  const auto in = data::random_stream({1, 8, 8, 4}, 0.1, 77);
  serve::RequestOptions ro;
  ro.tenant = "frail";
  const auto submit_and_wait = [&]() -> const char* {
    try {
      (void)server.submit("m", in, ro).wait();
      return "ok";
    } catch (const faults::FaultError&) {
      return "fault";
    } catch (const serve::TenantOverload&) {
      return "reject-fast";
    }
  };

  {
    faults::FaultConfig fc;
    fc.seed = 3;
    fc.rules.push_back({"serve.server.dispatch", {}, 1.0, 0.0});
    faults::ScopedFaults storm(fc);
    // Three consecutive dispatch failures trip the breaker...
    for (int i = 0; i < 3; ++i) EXPECT_STREQ(submit_and_wait(), "fault");
    // ...now open: attempts 1-3 of the probe cadence reject fast...
    for (int i = 0; i < 3; ++i) EXPECT_STREQ(submit_and_wait(), "reject-fast");
    // ...attempt 4 probes, the storm fails it, the breaker re-opens...
    EXPECT_STREQ(submit_and_wait(), "fault");
    // ...and the cadence restarts.
    for (int i = 0; i < 3; ++i) EXPECT_STREQ(submit_and_wait(), "reject-fast");
  }
  // Storm over: the next probe succeeds and closes the breaker for good.
  EXPECT_STREQ(submit_and_wait(), "ok");
  EXPECT_STREQ(submit_and_wait(), "ok");

  const serve::ServerStats st = server.stats();
  const TenantStats& ts = tenant_stats(st, "frail");
  EXPECT_EQ(ts.breaker_trips, 1u);   // kClosed -> kOpen exactly once
  EXPECT_EQ(ts.breaker_probes, 2u);  // failed probe + successful probe
  EXPECT_EQ(ts.breaker_rejected, 6u);
  EXPECT_EQ(ts.breaker, serve::BreakerState::kClosed);
  EXPECT_EQ(ts.submitted, 6u);  // 3 failures + 2 probes + 1 closed-state run
  EXPECT_EQ(ts.completed, 2u);
  EXPECT_EQ(ts.failed, 4u);
  EXPECT_EQ(ts.completed + ts.failed, ts.submitted);
  EXPECT_EQ(st.breaker_rejected, 6u);
}

// --- streaming sessions ------------------------------------------------------

ecnn::EnginePoolOptions session_pool_opts() {
  ecnn::EnginePoolOptions po;
  po.memory_words = 1u << 20;
  return po;
}

TEST(SessionTest, ChunkedRunMatchesOneShotFunctionally) {
  const QuantizedNetwork net = pipeline_net();
  const SneConfig hw = SneConfig::paper_design_point(2);
  const auto full = data::random_stream({1, 16, 16, 12}, 0.08, 123);

  // One-shot pipeline reference over the concatenated stream.
  SneEngine engine(hw, 1u << 20);
  const auto geom = ecnn::build_pipeline(engine, net, 12);
  core::RunOptions ropts;
  ropts.out_geometry = geom;
  ropts.out_geometry.timesteps = 12;
  const core::RunResult ref = engine.run(
      full.with_control_events(event::FirePolicy::kActiveStepsOnly).to_beats(),
      ropts);

  // The same stream fed as three 4-timestep chunks through a session.
  ecnn::EnginePool pool(hw, 0, session_pool_opts());
  serve::SessionOptions sopts;
  sopts.horizon_timesteps = 12;
  serve::StreamingSession session(
      pool, std::make_shared<const QuantizedNetwork>(net), sopts);
  std::vector<std::tuple<int, int, int, int>> chunked;
  for (auto& chunk : split_chunks(full, 4)) {
    const NetworkRunStats r = session.feed(std::move(chunk)).wait();
    const auto spikes = spike_set(r.final_output);
    chunked.insert(chunked.end(), spikes.begin(), spikes.end());
  }
  std::sort(chunked.begin(), chunked.end());
  // Membrane integration carries across chunk boundaries: the union of the
  // chunk outputs is the one-shot spike set, event for event.
  EXPECT_EQ(chunked, spike_set(ref.output));
  session.close();
  const serve::SessionStats st = session.stats();
  EXPECT_EQ(st.chunks_completed, 3u);
  EXPECT_EQ(st.timesteps_consumed, 12u);
  EXPECT_TRUE(st.closed);
}

TEST(SessionTest, ChunkedReplayIsBitwiseAcrossSessions) {
  const QuantizedNetwork net = pipeline_net();
  const SneConfig hw = SneConfig::paper_design_point(2);
  const auto full = data::random_stream({1, 16, 16, 12}, 0.1, 321);
  const auto model = std::make_shared<const QuantizedNetwork>(net);

  // Session A on a fresh pool.
  std::vector<NetworkRunStats> a;
  {
    ecnn::EnginePool pool(hw, 0, session_pool_opts());
    serve::SessionOptions sopts;
    sopts.horizon_timesteps = 16;
    serve::StreamingSession s(pool, model, sopts);
    for (auto& chunk : split_chunks(full, 4))
      a.push_back(s.feed(std::move(chunk)).wait());
  }
  // Session B on a pool whose engine served unrelated traffic first.
  std::vector<NetworkRunStats> b;
  {
    ecnn::EnginePool pool(hw, 0, session_pool_opts());
    {
      auto lease = pool.acquire();
      (void)lease.runner().run(three_layer_net(),
                               data::random_stream({1, 16, 16, 6}, 0.1, 5));
    }
    serve::SessionOptions sopts;
    sopts.horizon_timesteps = 16;
    serve::StreamingSession s(pool, model, sopts);
    for (auto& chunk : split_chunks(full, 4))
      b.push_back(s.feed(std::move(chunk)).wait());
  }
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_equivalent(a[i], b[i]);
}

TEST(SessionTest, RespawnLosesOnlyTheInflightChunk) {
  const QuantizedNetwork net = pipeline_net();
  const SneConfig hw = SneConfig::paper_design_point(2);
  const auto full = data::random_stream({1, 16, 16, 12}, 0.1, 456);
  const auto model = std::make_shared<const QuantizedNetwork>(net);
  auto chunks = split_chunks(full, 4);
  ASSERT_EQ(chunks.size(), 3u);

  // Reference session: fed chunks 0 and 2 only (chunk 1 never happened).
  std::vector<NetworkRunStats> ref;
  {
    ecnn::EnginePool pool(hw, 0, session_pool_opts());
    serve::SessionOptions sopts;
    sopts.horizon_timesteps = 12;
    serve::StreamingSession s(pool, model, sopts);
    ref.push_back(s.feed(chunks[0]).wait());
    ref.push_back(s.feed(chunks[2]).wait());
  }

  // Victim session: chunk 1's dispatch is killed by an injected fault. The
  // session quarantines its engine, respawns, restores the snapshot — and
  // chunks 0/2 come out bitwise identical to the undisturbed reference.
  ecnn::EnginePool pool(hw, 0, session_pool_opts());
  serve::SessionOptions sopts;
  sopts.horizon_timesteps = 12;
  serve::StreamingSession s(pool, model, sopts);

  const NetworkRunStats r0 = s.feed(chunks[0]).wait();
  {
    faults::FaultConfig fc;
    fc.seed = 9;
    fc.rules.push_back({"serve.session.chunk", {1}, 0.0, 0.0});
    faults::ScopedFaults chaos(fc);
    try {
      (void)s.feed(chunks[1]).wait();
      FAIL() << "chunk 1 should have failed";
    } catch (const serve::ChunkError& e) {
      // Diagnosable: names the failed timestep range and the rollback point.
      EXPECT_NE(std::string(e.what()).find("[4, 8)"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("rolled back to timestep 4"),
                std::string::npos)
          << e.what();
    }
  }
  const NetworkRunStats r2 = s.feed(chunks[2]).wait();
  expect_equivalent(ref[0], r0);
  expect_equivalent(ref[1], r2);

  s.close();
  const serve::SessionStats st = s.stats();
  EXPECT_EQ(st.chunks_completed, 2u);
  EXPECT_EQ(st.chunks_failed, 1u);
  EXPECT_EQ(st.respawns, 1u);
  EXPECT_EQ(st.timesteps_consumed, 8u);
  const ecnn::EnginePool::Stats ps = pool.stats();
  EXPECT_EQ(ps.quarantined, 1u);  // the poisoned engine was discarded
}

TEST(SessionTest, HeartbeatTimeoutExpiresIdleSessions) {
  const QuantizedNetwork net = pipeline_net();
  const SneConfig hw = SneConfig::paper_design_point(2);
  ecnn::EnginePool pool(hw, 0, session_pool_opts());
  serve::SessionOptions sopts;
  sopts.horizon_timesteps = 12;
  sopts.heartbeat_timeout_ms = 80.0;
  serve::StreamingSession s(
      pool, std::make_shared<const QuantizedNetwork>(net), sopts);

  const auto full = data::random_stream({1, 16, 16, 4}, 0.1, 99);
  EXPECT_GT(s.feed(full).wait().cycles, 0u);
  // Heartbeats keep it alive past several timeout windows...
  for (int i = 0; i < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    s.heartbeat();
  }
  EXPECT_FALSE(s.closed());
  // ...then silence expires it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!s.closed() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(s.closed());
  EXPECT_TRUE(s.stats().expired);
  EXPECT_THROW(s.feed(data::random_stream({1, 16, 16, 4}, 0.1, 100)),
               serve::SessionClosed);
  EXPECT_THROW(s.heartbeat(), serve::SessionClosed);
}

TEST(SessionTest, HorizonExhaustionIsDiagnosable) {
  const QuantizedNetwork net = pipeline_net();
  const SneConfig hw = SneConfig::paper_design_point(2);
  ecnn::EnginePool pool(hw, 0, session_pool_opts());
  serve::SessionOptions sopts;
  sopts.horizon_timesteps = 8;
  serve::StreamingSession s(
      pool, std::make_shared<const QuantizedNetwork>(net), sopts);
  const auto chunk = data::random_stream({1, 16, 16, 4}, 0.1, 11);
  EXPECT_GT(s.feed(chunk).wait().cycles, 0u);
  EXPECT_GT(s.feed(chunk).wait().cycles, 0u);
  // The session clock is spent; the chunk fails, the session survives.
  EXPECT_THROW(s.feed(chunk).wait(), serve::ChunkError);
  EXPECT_FALSE(s.closed());
  EXPECT_EQ(s.stats().timesteps_consumed, 8u);
}

TEST(SessionTest, RejectsNondeterministicStallRng) {
  const QuantizedNetwork net = pipeline_net();
  const SneConfig hw = SneConfig::paper_design_point(2);
  ecnn::EnginePoolOptions po = session_pool_opts();
  po.mem_timing.stall_probability = 0.05;
  po.mem_timing.rng_streams = false;  // whole-engine RNG: not respawnable
  ecnn::EnginePool pool(hw, 0, po);
  serve::SessionOptions sopts;
  EXPECT_THROW(serve::StreamingSession(
                   pool, std::make_shared<const QuantizedNetwork>(net), sopts),
               ConfigError);
}

// --- server-managed sessions -------------------------------------------------

TEST(TenantServerTest, SessionQuotaAndEviction) {
  serve::ModelRegistry registry;
  registry.put("p", pipeline_net());
  const SneConfig hw = SneConfig::paper_design_point(2);
  serve::ServeOptions so;
  so.engines = 2;
  so.memory_words = 1u << 20;
  serve::InferenceServer server(registry, hw, so);
  TenantConfig cfg;
  cfg.max_sessions = 1;
  server.register_tenant("streamer", cfg);

  serve::SessionOptions sopts;
  sopts.tenant = "streamer";
  sopts.horizon_timesteps = 12;
  auto session = server.open_session("p", sopts);
  EXPECT_THROW(server.open_session("p", sopts), serve::TenantOverload);
  EXPECT_THROW(
      server.open_session("nope", serve::SessionOptions{}), ConfigError);
  {
    serve::SessionOptions ghost;
    ghost.tenant = "ghost";
    EXPECT_THROW(server.open_session("p", ghost), ConfigError);
  }

  const auto chunk = data::random_stream({1, 16, 16, 4}, 0.1, 66);
  EXPECT_GT(session->feed(chunk).wait().cycles, 0u);

  // Eviction closes the tenant's sessions and refuses its future traffic.
  server.evict_tenant("streamer");
  EXPECT_TRUE(session->closed());
  EXPECT_THROW(session->feed(chunk), serve::SessionClosed);
  serve::RequestOptions ro;
  ro.tenant = "streamer";
  EXPECT_THROW(server.submit("p", chunk, ro), ConfigError);
  EXPECT_THROW(server.evict_tenant("streamer"), ConfigError);  // gone
  EXPECT_THROW(server.evict_tenant(serve::kDefaultTenant), ConfigError);

  const serve::ServerStats st = server.stats();
  const TenantStats& ts = tenant_stats(st, "streamer");
  EXPECT_EQ(ts.sessions_opened, 1u);
  EXPECT_EQ(ts.sessions_closed, 1u);
  EXPECT_EQ(ts.chunks_completed, 1u);
  // The freed quota slot is not reusable — the tenant itself is gone.
  serve::SessionOptions again;
  again.tenant = "streamer";
  EXPECT_THROW(server.open_session("p", again), ConfigError);
}

}  // namespace
}  // namespace sne
