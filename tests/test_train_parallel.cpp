// Determinism contract of the data-parallel flat-tensor trainer:
//
//  * for a fixed minibatch, trained weights and EpochStats are bitwise
//    identical for every worker count (1 / 2 / 4, shared pool or dedicated);
//  * minibatch = 1 reproduces the pre-refactor serial trajectory (golden
//    values recorded from the nested-vector implementation on the same toy
//    task before the flat-tensor rework);
//  * parallel evaluate() and calibrate_thresholds() match their serial
//    results exactly.
#include <gtest/gtest.h>

#include <vector>

#include "data/synthetic.h"
#include "ecnn/layer.h"
#include "train/trainer.h"

namespace sne::train {
namespace {

/// Three-class toy task: events concentrated in the left / middle / right
/// third of a 2-channel 12x12 frame. (Identical to the generator used to
/// record the pre-refactor golden trajectory below.)
data::Dataset make_toy_task(std::uint16_t samples_per_class,
                            std::uint64_t seed) {
  data::Dataset d;
  d.geometry = event::StreamGeometry{2, 12, 12, 8};
  d.classes = 3;
  Rng rng(seed);
  for (std::uint16_t label = 0; label < 3; ++label) {
    for (std::uint16_t k = 0; k < samples_per_class; ++k) {
      data::Sample s;
      s.label = label;
      s.stream = event::EventStream(d.geometry);
      for (std::uint16_t t = 0; t < 8; ++t)
        for (int e = 0; e < 4; ++e) {
          const std::uint8_t x = static_cast<std::uint8_t>(
              label * 4 + rng.uniform_int(0, 3));
          const std::uint8_t y =
              static_cast<std::uint8_t>(rng.uniform_int(0, 11));
          const std::uint8_t ch =
              static_cast<std::uint8_t>(rng.uniform_int(0, 1));
          s.stream.push_update(t, ch, x, y);
        }
      s.stream.normalize();
      d.samples.push_back(std::move(s));
    }
  }
  return d;
}

/// conv -> pool -> fc: one layer of every type.
ecnn::Network toy_net() {
  ecnn::Network n;
  n.layers = {ecnn::LayerSpec::conv("c", 2, 12, 12, 4, 3, 1, 1),
              ecnn::LayerSpec::pool("p", 4, 12, 12, 2),
              ecnn::LayerSpec::fc("f", 4, 6, 6, 3)};
  n.validate();
  return n;
}

struct TrainedRun {
  std::vector<EpochStats> history;
  ecnn::Network net;
  double eval = 0.0;
};

TrainedRun train_toy(NeuronModel model, std::uint32_t minibatch,
                     unsigned workers, bool calibrate = false,
                     std::uint32_t epochs = 3) {
  const data::Dataset tr = make_toy_task(6, 11);
  const data::Dataset te = make_toy_task(4, 12);
  TrainConfig cfg;
  cfg.model = model;
  cfg.epochs = epochs;
  cfg.lr = 4e-3;
  cfg.minibatch = minibatch;
  cfg.workers = workers;
  Trainer t(toy_net(), cfg);
  if (calibrate) t.calibrate_thresholds(tr, 1.0, 4);
  TrainedRun run;
  run.history = t.fit(tr);
  run.eval = t.evaluate(te);
  run.net = t.network();
  return run;
}

void expect_bitwise_equal(const TrainedRun& a, const TrainedRun& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t e = 0; e < a.history.size(); ++e) {
    EXPECT_EQ(a.history[e].loss, b.history[e].loss) << "epoch " << e;
    EXPECT_EQ(a.history[e].train_accuracy, b.history[e].train_accuracy)
        << "epoch " << e;
  }
  EXPECT_EQ(a.eval, b.eval);
  ASSERT_EQ(a.net.layers.size(), b.net.layers.size());
  for (std::size_t li = 0; li < a.net.layers.size(); ++li) {
    const auto& wa = a.net.layers[li].weights;
    const auto& wb = b.net.layers[li].weights;
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t w = 0; w < wa.size(); ++w)
      ASSERT_EQ(wa[w], wb[w]) << "layer " << li << " weight " << w;
    EXPECT_EQ(a.net.layers[li].threshold, b.net.layers[li].threshold);
  }
}

TEST(TrainParallelTest, WeightsBitwiseIdenticalAcrossWorkers) {
  // Same minibatch, three worker configurations (serial / dedicated pools):
  // every trained bit and every EpochStats field must match.
  const TrainedRun w1 = train_toy(NeuronModel::kSneLif, 4, 1);
  const TrainedRun w2 = train_toy(NeuronModel::kSneLif, 4, 2);
  const TrainedRun w4 = train_toy(NeuronModel::kSneLif, 4, 4);
  expect_bitwise_equal(w1, w2);
  expect_bitwise_equal(w1, w4);
}

TEST(TrainParallelTest, RaggedMinibatchBitwiseAcrossWorkers) {
  // 18 samples with minibatch 4 leaves a ragged tail of 2; the fixed-order
  // reduction must stay worker-invariant there too. SRM covers the second
  // neuron model.
  const TrainedRun w1 = train_toy(NeuronModel::kSrm, 4, 1);
  const TrainedRun w4 = train_toy(NeuronModel::kSrm, 4, 4);
  expect_bitwise_equal(w1, w4);
}

TEST(TrainParallelTest, SharedPoolMatchesDedicatedPool) {
  // workers = 0 (process-wide pool) must produce the same bits as any
  // dedicated pool size.
  const TrainedRun shared = train_toy(NeuronModel::kSneLif, 3, 0);
  const TrainedRun serial = train_toy(NeuronModel::kSneLif, 3, 1);
  expect_bitwise_equal(shared, serial);
}

// Golden trajectory recorded from the pre-refactor nested-vector trainer
// (minibatch 1, serial) on make_toy_task(6, 11) / toy_net with
// calibrate_thresholds(train, 1.0, 4), epochs = 4, lr = 4e-3: the flat
// data-parallel trainer at minibatch = 1 must retrace it. EXPECT_DOUBLE_EQ
// (4 ulp) keeps the pin robust to libm differences across hosts while still
// catching any real trajectory change.
TEST(TrainParallelTest, MinibatchOneMatchesPreRefactorSerialTrajectory) {
  const TrainedRun lif =
      train_toy(NeuronModel::kSneLif, 1, 1, /*calibrate=*/true, /*epochs=*/4);
  ASSERT_EQ(lif.history.size(), 4u);
  EXPECT_DOUBLE_EQ(lif.history[0].loss, 0x1.344dc70000dabp+0);
  EXPECT_DOUBLE_EQ(lif.history[1].loss, 0x1.8d991293cd374p-3);
  EXPECT_DOUBLE_EQ(lif.history[2].loss, 0x1.6ace308001dbap-5);
  EXPECT_DOUBLE_EQ(lif.history[3].loss, 0x1.31086da33a6ccp-5);
  EXPECT_DOUBLE_EQ(lif.history[0].train_accuracy, 0x1.c71c71c71c71cp-2);
  EXPECT_DOUBLE_EQ(lif.history[1].train_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(lif.eval, 1.0);
  ASSERT_EQ(lif.net.layers.size(), 3u);
  EXPECT_FLOAT_EQ(lif.net.layers[0].threshold, 0x1.01a164p-2f);
  EXPECT_FLOAT_EQ(lif.net.layers[2].threshold, 0x1.9aacaep-3f);

  const TrainedRun srm =
      train_toy(NeuronModel::kSrm, 1, 1, /*calibrate=*/true, /*epochs=*/4);
  EXPECT_DOUBLE_EQ(srm.history[0].loss, 0x1.15c230e48b0f9p+0);
  EXPECT_DOUBLE_EQ(srm.history[1].loss, 0x1.09f08cad2ceddp-2);
  EXPECT_DOUBLE_EQ(srm.history[2].loss, 0x1.0c988b699944ap-4);
  EXPECT_DOUBLE_EQ(srm.history[3].loss, 0x1.acd05703ba18ap-5);
  EXPECT_FLOAT_EQ(srm.net.layers[0].threshold, 0x1.d1c71ep-2f);
  EXPECT_FLOAT_EQ(srm.net.layers[2].threshold, 0x1.5f73eep-3f);
}

TEST(TrainParallelTest, CalibrationBitwiseAcrossWorkers) {
  const data::Dataset calib = make_toy_task(6, 21);
  std::vector<float> ref;
  for (unsigned workers : {1u, 2u, 4u}) {
    TrainConfig cfg;
    cfg.workers = workers;
    Trainer t(toy_net(), cfg);
    t.calibrate_thresholds(calib, 1.0, 5);
    std::vector<float> th;
    for (const auto& l : t.network().layers) th.push_back(l.threshold);
    if (ref.empty())
      ref = th;
    else
      EXPECT_EQ(ref, th) << "workers=" << workers;
  }
}

TEST(TrainParallelTest, ParallelEvaluateMatchesSerial) {
  const data::Dataset tr = make_toy_task(6, 31);
  const data::Dataset te = make_toy_task(5, 32);
  double serial_acc = -1.0;
  for (unsigned workers : {1u, 4u, 0u}) {
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.minibatch = 2;
    cfg.workers = workers;
    Trainer t(toy_net(), cfg);
    t.fit(tr);
    const double acc = t.evaluate(te);
    if (serial_acc < 0.0)
      serial_acc = acc;
    else
      EXPECT_EQ(serial_acc, acc) << "workers=" << workers;
  }
}

TEST(TrainParallelTest, MinibatchTrainingLearnsToyTask) {
  // Averaged minibatch gradients change the trajectory (that is expected);
  // the optimizer must still solve the separable toy task.
  const TrainedRun run =
      train_toy(NeuronModel::kSneLif, 4, 0, /*calibrate=*/true, /*epochs=*/8);
  EXPECT_LT(run.history.back().loss, run.history.front().loss);
  EXPECT_GE(run.eval, 0.9);
}

}  // namespace
}  // namespace sne::train
