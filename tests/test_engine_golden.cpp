// The backbone equivalence suite: the cycle-accurate engine must emit
// exactly the golden executor's spike train for any layer and stimulus.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/synthetic.h"
#include "ecnn/golden.h"
#include "ecnn/mapper.h"
#include "ecnn/runner.h"
#include "test_util.h"

namespace sne {
namespace {

using ecnn::GoldenExecutor;
using ecnn::LayerSpec;
using ecnn::QuantizedLayerSpec;
using testutil::canonical_spikes;

/// Builds a random quantized conv layer.
QuantizedLayerSpec random_conv(Rng& rng, std::uint16_t in_ch, std::uint16_t in_w,
                               std::uint16_t in_h, std::uint16_t out_ch,
                               std::uint8_t kernel, std::uint8_t stride,
                               std::uint8_t pad) {
  QuantizedLayerSpec l;
  l.type = LayerSpec::Type::kConv;
  l.name = "rand_conv";
  l.in_ch = in_ch;
  l.in_w = in_w;
  l.in_h = in_h;
  l.out_ch = out_ch;
  l.kernel = kernel;
  l.stride = stride;
  l.pad = pad;
  l.weights.resize(static_cast<std::size_t>(out_ch) * in_ch * kernel * kernel);
  for (auto& w : l.weights)
    w = static_cast<std::int8_t>(rng.uniform_int(-8, 7));
  l.lif.leak = static_cast<std::int32_t>(rng.uniform_int(0, 3));
  l.lif.v_th = static_cast<std::int32_t>(rng.uniform_int(1, 12));
  return l;
}

/// Runs one layer on the engine through the full mapper/runner path and
/// compares spikes against the golden executor.
void expect_layer_equivalence(const QuantizedLayerSpec& layer,
                              const event::EventStream& input,
                              std::uint32_t num_slices,
                              event::FirePolicy policy =
                                  event::FirePolicy::kActiveStepsOnly) {
  core::SneConfig hw = core::SneConfig::paper_design_point(num_slices);
  core::SneEngine engine(hw);
  ecnn::NetworkRunner runner(engine, /*use_wload_stream=*/true);
  ecnn::QuantizedNetwork net;
  net.layers.push_back(layer);
  const ecnn::NetworkRunStats hw_stats = runner.run(net, input, policy);
  const GoldenExecutor::LayerTrace gold =
      GoldenExecutor::run_layer(layer, input, policy);
  const auto hw_spikes = canonical_spikes(hw_stats.final_output);
  const auto gold_spikes = canonical_spikes(gold.output);
  ASSERT_EQ(hw_spikes.size(), gold_spikes.size())
      << "spike count mismatch (hw vs golden)";
  for (std::size_t i = 0; i < hw_spikes.size(); ++i)
    ASSERT_EQ(hw_spikes[i], gold_spikes[i]) << "spike " << i << " differs";
}

TEST(EngineGolden, SingleEventSingleSlice) {
  Rng rng(7);
  auto layer = random_conv(rng, 1, 16, 16, 1, 3, 1, 1);
  layer.lif.v_th = 1;
  // Make all weights strongly positive so one event certainly fires a 3x3
  // neighbourhood.
  for (auto& w : layer.weights) w = 7;
  event::EventStream in(event::StreamGeometry{1, 16, 16, 4});
  in.push_update(1, 0, 5, 6);
  expect_layer_equivalence(layer, in, 1);
}

TEST(EngineGolden, DenseStimulusSmallConv) {
  Rng rng(11);
  auto layer = random_conv(rng, 2, 16, 16, 4, 3, 1, 1);
  const auto in = data::random_stream({2, 16, 16, 10}, 0.08, 123);
  expect_layer_equivalence(layer, in, 2);
}

TEST(EngineGolden, StridedConv) {
  Rng rng(13);
  auto layer = random_conv(rng, 2, 16, 16, 3, 3, 2, 1);
  const auto in = data::random_stream({2, 16, 16, 8}, 0.05, 321);
  expect_layer_equivalence(layer, in, 4);
}

TEST(EngineGolden, PoolingLayerIsOrPool) {
  QuantizedLayerSpec pool;
  pool.type = LayerSpec::Type::kPool;
  pool.name = "pool2";
  pool.in_ch = 4;
  pool.in_w = 16;
  pool.in_h = 16;
  pool.out_ch = 4;
  pool.kernel = 2;
  pool.stride = 2;
  pool.pad = 0;
  pool.lif.leak = 0;
  pool.lif.v_th = 0;
  const auto in = data::random_stream({4, 16, 16, 6}, 0.06, 99);
  expect_layer_equivalence(pool, in, 2);
}

TEST(EngineGolden, FcResidentSmall) {
  // 16 positions x 16 clusters = 256 sets: buffer-resident FC.
  Rng rng(17);
  QuantizedLayerSpec fc;
  fc.type = LayerSpec::Type::kFc;
  fc.name = "fc_small";
  fc.in_ch = 1;
  fc.in_w = 4;
  fc.in_h = 4;
  fc.out_ch = 10;
  fc.weights.resize(10 * 16);
  for (auto& w : fc.weights) w = static_cast<std::int8_t>(rng.uniform_int(-8, 7));
  fc.lif.leak = 1;
  fc.lif.v_th = 5;
  const auto in = data::random_stream({1, 4, 4, 12}, 0.25, 555);
  expect_layer_equivalence(fc, in, 1);
}

TEST(EngineGolden, FcStreamedLarge) {
  // 128 positions > 16 sets/cluster: streamed FC weights.
  Rng rng(19);
  QuantizedLayerSpec fc;
  fc.type = LayerSpec::Type::kFc;
  fc.name = "fc_large";
  fc.in_ch = 8;
  fc.in_w = 4;
  fc.in_h = 4;
  fc.out_ch = 40;
  fc.weights.resize(static_cast<std::size_t>(40) * 128);
  for (auto& w : fc.weights) w = static_cast<std::int8_t>(rng.uniform_int(-8, 7));
  fc.lif.leak = 0;
  fc.lif.v_th = 8;
  const auto in = data::random_stream({8, 4, 4, 10}, 0.10, 777);
  expect_layer_equivalence(fc, in, 1);
}

TEST(EngineGolden, MultiWindowLargeMap) {
  // 48x40 output map does not fit one slice (max 32x32): spatial windows.
  Rng rng(23);
  auto layer = random_conv(rng, 1, 48, 40, 2, 3, 1, 1);
  const auto in = data::random_stream({1, 48, 40, 6}, 0.03, 888);
  expect_layer_equivalence(layer, in, 2);
}

TEST(EngineGolden, ManyChannelsMultiRound) {
  // More output channels than one round can carry -> SW-managed loop.
  Rng rng(29);
  auto layer = random_conv(rng, 3, 12, 12, 20, 3, 1, 1);
  const auto in = data::random_stream({3, 12, 12, 8}, 0.05, 999);
  expect_layer_equivalence(layer, in, 2);
}

TEST(EngineGolden, EveryStepFirePolicy) {
  Rng rng(31);
  auto layer = random_conv(rng, 1, 12, 12, 2, 3, 1, 1);
  layer.lif.leak = 2;  // leak matters on silent steps under kEveryStep
  const auto in = data::random_stream({1, 12, 12, 12}, 0.02, 444);
  expect_layer_equivalence(layer, in, 1, event::FirePolicy::kEveryStep);
}

TEST(EngineGolden, SilentStepSkipIsLossless) {
  // With non-negative thresholds, skipping silent timesteps must not change
  // the spike train (the TLU equivalence the design relies on).
  Rng rng(37);
  auto layer = random_conv(rng, 2, 10, 10, 3, 3, 1, 1);
  layer.lif.leak = 1;
  event::EventStream in(event::StreamGeometry{2, 10, 10, 20});
  // Sparse bursts separated by long silences.
  in.push_update(2, 0, 3, 3);
  in.push_update(2, 1, 4, 4);
  in.push_update(11, 0, 3, 4);
  in.push_update(19, 1, 5, 5);
  in.normalize();
  const auto lazy =
      GoldenExecutor::run_layer(layer, in, event::FirePolicy::kActiveStepsOnly);
  const auto eager =
      GoldenExecutor::run_layer(layer, in, event::FirePolicy::kEveryStep);
  EXPECT_EQ(canonical_spikes(lazy.output), canonical_spikes(eager.output));
}

/// Parameterized sweep: random layers and stimuli across slice counts.
struct SweepParam {
  std::uint64_t seed;
  std::uint32_t slices;
  std::uint8_t kernel;
  std::uint8_t stride;
  std::uint8_t pad;
};

class EngineGoldenSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EngineGoldenSweep, RandomizedEquivalence) {
  const SweepParam p = GetParam();
  Rng rng(p.seed);
  const std::uint16_t in_ch = static_cast<std::uint16_t>(rng.uniform_int(1, 3));
  const std::uint16_t out_ch = static_cast<std::uint16_t>(rng.uniform_int(1, 6));
  const std::uint16_t in_w = static_cast<std::uint16_t>(rng.uniform_int(8, 20));
  const std::uint16_t in_h = static_cast<std::uint16_t>(rng.uniform_int(8, 20));
  auto layer = random_conv(rng, in_ch, in_w, in_h, out_ch, p.kernel, p.stride,
                           p.pad);
  const double density = rng.uniform(0.01, 0.08);
  const auto in = data::random_stream(
      {in_ch, static_cast<std::uint8_t>(in_w), static_cast<std::uint8_t>(in_h),
       8},
      density, p.seed * 31 + 1);
  expect_layer_equivalence(layer, in, p.slices);
}

INSTANTIATE_TEST_SUITE_P(
    KernelsStridesSlices, EngineGoldenSweep,
    ::testing::Values(SweepParam{101, 1, 3, 1, 1}, SweepParam{102, 2, 3, 1, 1},
                      SweepParam{103, 4, 3, 1, 1}, SweepParam{104, 8, 3, 1, 1},
                      SweepParam{105, 2, 5, 1, 2}, SweepParam{106, 2, 5, 2, 2},
                      SweepParam{107, 4, 1, 1, 0}, SweepParam{108, 2, 2, 2, 0},
                      SweepParam{109, 2, 4, 4, 0}, SweepParam{110, 1, 7, 1, 3},
                      SweepParam{111, 8, 3, 2, 1}, SweepParam{112, 4, 2, 1, 1}));

}  // namespace
}  // namespace sne
