// Trainer tests: the surrogate-gradient BPTT must learn a small separable
// task with both neuron models, and the quantized deployment must track the
// float model.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ecnn/golden.h"
#include "ecnn/quantized.h"
#include "train/trainer.h"

namespace sne::train {
namespace {

/// Tiny 2-class task: events concentrated left vs right half of the frame.
data::Dataset make_separable_task(std::uint16_t samples_per_class,
                                  std::uint64_t seed) {
  data::Dataset d;
  d.geometry = event::StreamGeometry{1, 8, 8, 10};
  d.classes = 2;
  Rng rng(seed);
  for (std::uint16_t label = 0; label < 2; ++label) {
    for (std::uint16_t k = 0; k < samples_per_class; ++k) {
      data::Sample s;
      s.label = label;
      s.stream = event::EventStream(d.geometry);
      for (std::uint16_t t = 0; t < 10; ++t)
        for (int e = 0; e < 3; ++e) {
          const std::uint8_t x = static_cast<std::uint8_t>(
              (label == 0 ? 0 : 4) + rng.uniform_int(0, 3));
          const std::uint8_t y = static_cast<std::uint8_t>(rng.uniform_int(0, 7));
          s.stream.push_update(t, 0, x, y);
        }
      s.stream.normalize();
      d.samples.push_back(std::move(s));
    }
  }
  return d;
}

ecnn::Network tiny_net() {
  ecnn::Network n;
  ecnn::LayerSpec fc = ecnn::LayerSpec::fc("fc", 1, 8, 8, 2);
  n.layers = {fc};
  n.validate();
  return n;
}

TEST(TrainerTest, LearnsSeparableTaskWithSneLif) {
  const data::Dataset train = make_separable_task(12, 1);
  const data::Dataset test = make_separable_task(8, 2);
  TrainConfig cfg;
  cfg.model = NeuronModel::kSneLif;
  cfg.epochs = 12;
  cfg.lr = 5e-3;
  Trainer trainer(tiny_net(), cfg);
  const auto hist = trainer.fit(train);
  EXPECT_EQ(hist.size(), 12u);
  EXPECT_LT(hist.back().loss, hist.front().loss);
  EXPECT_GE(trainer.evaluate(test), 0.9);
}

TEST(TrainerTest, LearnsSeparableTaskWithSrm) {
  const data::Dataset train = make_separable_task(12, 3);
  const data::Dataset test = make_separable_task(8, 4);
  TrainConfig cfg;
  cfg.model = NeuronModel::kSrm;
  cfg.epochs = 12;
  cfg.lr = 5e-3;
  Trainer trainer(tiny_net(), cfg);
  trainer.fit(train);
  EXPECT_GE(trainer.evaluate(test), 0.9);
}

TEST(TrainerTest, QuantizedDeploymentTracksFloatModel) {
  // Train float SNE-LIF, quantize to 4 bits, evaluate with the *integer*
  // golden executor: accuracy must survive quantization on this easy task
  // (the Table I claim in miniature).
  const data::Dataset train = make_separable_task(12, 5);
  const data::Dataset test = make_separable_task(10, 6);
  TrainConfig cfg;
  cfg.model = NeuronModel::kSneLif;
  cfg.epochs = 15;
  cfg.lr = 5e-3;
  Trainer trainer(tiny_net(), cfg);
  trainer.fit(train);
  const double float_acc = trainer.evaluate(test);

  const ecnn::QuantizedNetwork qnet = ecnn::quantize(trainer.network());
  std::size_t correct = 0;
  for (const data::Sample& s : test.samples) {
    const auto traces = ecnn::GoldenExecutor::run_network(qnet, s.stream);
    const auto counts =
        ecnn::GoldenExecutor::class_spike_counts(traces.back().output, 2);
    const std::size_t pred = counts[1] > counts[0] ? 1u : 0u;
    if (pred == s.label) ++correct;
  }
  const double q_acc =
      static_cast<double>(correct) / static_cast<double>(test.samples.size());
  EXPECT_GE(float_acc, 0.9);
  EXPECT_GE(q_acc, float_acc - 0.15);
}

TEST(TrainerTest, DeterministicPerSeed) {
  const data::Dataset train = make_separable_task(6, 7);
  TrainConfig cfg;
  cfg.epochs = 3;
  Trainer a(tiny_net(), cfg), b(tiny_net(), cfg);
  const auto ha = a.fit(train);
  const auto hb = b.fit(train);
  for (std::size_t i = 0; i < ha.size(); ++i)
    EXPECT_DOUBLE_EQ(ha[i].loss, hb[i].loss);
}

TEST(TrainerTest, ForwardCountsShapeMatchesClasses) {
  TrainConfig cfg;
  Trainer t(tiny_net(), cfg);
  const auto task = make_separable_task(1, 9);
  const auto counts = t.forward_counts(task.samples[0].stream);
  EXPECT_EQ(counts.size(), 2u);
}

}  // namespace
}  // namespace sne::train
