// Neuron-model tests: LIF semantics, TLU lazy/eager equivalence, SRM
// dynamics, quantization properties.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "neuron/lif.h"
#include "neuron/quantize.h"
#include "neuron/srm.h"

namespace sne::neuron {
namespace {

TEST(Lif, MembraneUpdateFormula) {
  // V[t+1] = V[t] - L + sum(W*S) with fire at V > V_th (paper III-B).
  LifParams p;
  p.leak = 2;
  p.v_th = 10;
  LifNeuron n;
  n.integrate(0, 8, p);
  EXPECT_EQ(n.membrane(), 8);
  EXPECT_FALSE(n.fire(0, p));  // 8 <= 10
  n.integrate(1, 8, p);        // leak 2 applied first: 8-2+8 = 14
  EXPECT_EQ(n.membrane(), 14);
  EXPECT_TRUE(n.fire(1, p));   // 14 > 10
  EXPECT_EQ(n.membrane(), 0);  // reset to zero
}

TEST(Lif, ThresholdIsStrict) {
  LifParams p;
  p.leak = 0;
  p.v_th = 5;
  LifNeuron n;
  n.integrate(0, 5, p);
  EXPECT_FALSE(n.fire(0, p));  // V == V_th does not fire
  n.integrate(1, 1, p);
  EXPECT_TRUE(n.fire(1, p));
}

TEST(Lif, SubtractThresholdReset) {
  LifParams p;
  p.leak = 0;
  p.v_th = 5;
  p.reset_mode = ResetMode::kSubtractThreshold;
  LifNeuron n;
  n.integrate(0, 12, p);
  EXPECT_TRUE(n.fire(0, p));
  EXPECT_EQ(n.membrane(), 7);
}

TEST(Lif, SaturatingState) {
  LifParams p;
  p.leak = 0;
  p.v_th = 127;
  LifNeuron n;
  for (int i = 0; i < 100; ++i) n.integrate(0, 7, p);
  EXPECT_EQ(n.membrane(), 127);  // saturates, never wraps
  for (int i = 0; i < 100; ++i) n.integrate(0, -8, p);
  EXPECT_EQ(n.membrane(), -128);
}

TEST(Lif, LeakTowardZeroClampsAtRest) {
  EXPECT_EQ(leaked(10, 3, 2, LeakMode::kTowardZero), 4);
  EXPECT_EQ(leaked(10, 3, 4, LeakMode::kTowardZero), 0);
  EXPECT_EQ(leaked(10, 3, 100, LeakMode::kTowardZero), 0);
  EXPECT_EQ(leaked(-10, 3, 2, LeakMode::kTowardZero), -4);
  EXPECT_EQ(leaked(-10, 3, 100, LeakMode::kTowardZero), 0);
  EXPECT_EQ(leaked(0, 3, 5, LeakMode::kTowardZero), 0);
}

TEST(Lif, SubtractiveLeakSaturates) {
  EXPECT_EQ(leaked(10, 3, 2, LeakMode::kSubtractive), 4);
  EXPECT_EQ(leaked(10, 3, 100, LeakMode::kSubtractive), kStateRange.lo);
}

/// The TLU theorem: one-shot lazy leak over dt steps equals dt eager
/// single-step applications, for both leak modes, any state value.
TEST(Lif, LazyLeakEqualsEagerLeak) {
  for (const LeakMode mode : {LeakMode::kTowardZero, LeakMode::kSubtractive}) {
    for (std::int32_t v0 = kStateRange.lo; v0 <= kStateRange.hi; ++v0) {
      for (std::int32_t leak : {0, 1, 2, 5, 9}) {
        for (std::uint32_t dt : {1u, 2u, 3u, 7u, 50u}) {
          std::int32_t eager = v0;
          for (std::uint32_t k = 0; k < dt; ++k) eager = leaked(eager, leak, 1, mode);
          const std::int32_t lazy = leaked(v0, leak, dt, mode);
          ASSERT_EQ(lazy, eager) << "v0=" << v0 << " leak=" << leak
                                 << " dt=" << dt << " mode=" << static_cast<int>(mode);
        }
      }
    }
  }
}

/// Property: a LIF neuron with non-negative threshold cannot spike on a
/// timestep without input — the soundness condition for skipping silent
/// steps (FirePolicy::kActiveStepsOnly).
TEST(Lif, NoSpikeWithoutInputWhenThresholdNonNegative) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    LifParams p;
    p.leak = static_cast<std::int32_t>(rng.uniform_int(0, 10));
    p.v_th = static_cast<std::int32_t>(rng.uniform_int(0, 60));
    LifNeuron n;
    // Drive below threshold, then check silent evolution never fires.
    n.integrate(0, static_cast<std::int32_t>(rng.uniform_int(-50, p.v_th)), p);
    ASSERT_FALSE(n.fire(0, p));
    for (std::uint32_t t = 1; t < 30; ++t) ASSERT_FALSE(n.fire(t, p));
  }
}

TEST(Lif, ResetClearsStateAndTlu) {
  LifParams p;
  p.leak = 1;
  p.v_th = 100;
  LifNeuron n;
  n.integrate(5, 50, p);
  n.reset();
  EXPECT_EQ(n.membrane(), 0);
  EXPECT_EQ(n.last_update(), 0u);
}

TEST(LifParamsTest, Validation) {
  LifParams p;
  p.leak = -1;
  EXPECT_THROW(p.validate(), ConfigError);
  p.leak = 0;
  p.v_th = 400;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Srm, FiresWithSustainedDrive) {
  SrmParams p;
  SrmNeuron n;
  bool fired = false;
  for (int t = 0; t < 20 && !fired; ++t) fired = n.step(0.4, p);
  EXPECT_TRUE(fired);
  EXPECT_EQ(n.membrane(), 0.0);  // reset on fire
}

TEST(Srm, RefractorySuppressesImmediateRefire) {
  SrmParams p;
  SrmNeuron n;
  int fires = 0;
  int gap_min = 100, last = -100;
  for (int t = 0; t < 60; ++t) {
    if (n.step(0.8, p)) {
      if (last >= 0) gap_min = std::min(gap_min, t - last);
      last = t;
      ++fires;
    }
  }
  EXPECT_GE(fires, 2);
  EXPECT_GE(gap_min, 2);  // refractory enforces a gap under constant drive
}

TEST(Srm, DecaysWithoutInput) {
  SrmParams p;
  SrmNeuron n;
  n.step(0.9, p);
  const double u1 = n.membrane();
  for (int t = 0; t < 50; ++t) n.step(0.0, p);
  EXPECT_LT(std::abs(n.membrane()), std::abs(u1) * 0.1 + 1e-9);
}

TEST(SrmParamsTest, Validation) {
  SrmParams p;
  p.tau_m = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Quantize, WeightGridRoundTrip) {
  for (std::int32_t code = -8; code <= 7; ++code) {
    const double w = dequantize_weight(code, 0.25);
    EXPECT_EQ(quantize_weight(w, 0.25), code);
  }
}

TEST(Quantize, LayerScaleMapsMaxWeightToGridEdge) {
  std::vector<float> w = {0.1f, -0.7f, 0.35f, 0.02f};
  const QuantizedLayer q = quantize_layer(w, 0.5, 0.05);
  EXPECT_EQ(q.weights.size(), w.size());
  // max |w| = 0.7 maps near the grid edge.
  EXPECT_EQ(q.weights[1], -7);
  EXPECT_GE(q.v_th, 1);
  EXPECT_GE(q.leak, 0);
}

TEST(Quantize, ScaleInvarianceOfDynamics) {
  // Scaling weights+threshold+leak by the same factor yields identical
  // codes (the invariance the quantizer relies on).
  std::vector<float> w = {0.2f, -0.4f, 0.7f};
  const QuantizedLayer a = quantize_layer(w, 0.9, 0.1);
  std::vector<float> w2;
  for (float x : w) w2.push_back(x * 3.0f);
  const QuantizedLayer b = quantize_layer(w2, 0.9 * 3.0, 0.1 * 3.0);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.v_th, b.v_th);
  EXPECT_EQ(a.leak, b.leak);
}

TEST(Quantize, ThresholdNeverZero) {
  std::vector<float> w = {1.0f};
  const QuantizedLayer q = quantize_layer(w, 1e-6, 0.0);
  EXPECT_GE(q.v_th, 1);
}

TEST(Quantize, RmsErrorBounded) {
  Rng rng(3);
  std::vector<float> w(256);
  double max_abs = 0.0;
  for (auto& x : w) {
    x = static_cast<float>(rng.uniform(-1.0, 1.0));
    max_abs = std::max(max_abs, std::abs(static_cast<double>(x)));
  }
  const QuantizedLayer q = quantize_layer(w, 1.0, 0.0);
  // RMS error of uniform quantization is at most ~step/2.
  EXPECT_LE(weight_rms_error(w, q), (max_abs / 7.0) * 0.6);
}

}  // namespace
}  // namespace sne::neuron
