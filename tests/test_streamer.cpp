// Streamer (DMA) tests: 1-D transfers, latency absorption by the 16-word
// FIFO, backpressure, contention robustness (paper section III-D.2).
#include <gtest/gtest.h>

#include "core/streamer.h"
#include "hwsim/counters.h"
#include "hwsim/memory.h"

namespace sne::core {
namespace {

TEST(InputStreamerTest, TransfersAllWordsInOrder) {
  hwsim::MemoryModel mem(256);
  mem.load(10, {1, 2, 3, 4, 5});
  InputStreamer dma(mem, 16);
  dma.start(10, 5);
  hwsim::ActivityCounters c;
  std::vector<std::uint32_t> got;
  for (int cycle = 0; cycle < 100 && got.size() < 5; ++cycle) {
    dma.tick(c);
    while (!dma.fifo().empty()) got.push_back(dma.fifo().pop());
  }
  EXPECT_EQ(got, (std::vector<std::uint32_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(dma.fully_drained());
  EXPECT_EQ(c.dma_read_beats, 5u);
}

TEST(InputStreamerTest, FirstWordPaysLatencyThenStreams) {
  hwsim::MemoryTiming t;
  t.latency_cycles = 6;
  hwsim::MemoryModel mem(64, t);
  mem.load(0, {7, 8, 9});
  InputStreamer dma(mem, 16);
  dma.start(0, 3);
  hwsim::ActivityCounters c;
  int first_arrival = -1, last_arrival = -1;
  for (int cycle = 0; cycle < 50; ++cycle) {
    dma.tick(c);
    if (first_arrival < 0 && !dma.fifo().empty()) first_arrival = cycle;
    if (dma.transfer_done() && last_arrival < 0) last_arrival = cycle;
  }
  EXPECT_GE(first_arrival, 5);                   // initial latency
  EXPECT_LE(last_arrival - first_arrival, 4);    // then ~1 word/cycle
}

TEST(InputStreamerTest, BackpressureHoldsBurst) {
  hwsim::MemoryModel mem(64);
  mem.load(0, {1, 2, 3, 4, 5, 6});
  InputStreamer dma(mem, /*fifo_depth=*/2);
  dma.start(0, 6);
  hwsim::ActivityCounters c;
  for (int cycle = 0; cycle < 20; ++cycle) dma.tick(c);
  // FIFO holds 2, transfer stalls without dropping anything.
  EXPECT_EQ(dma.fifo().size(), 2u);
  EXPECT_FALSE(dma.transfer_done());
  std::vector<std::uint32_t> got;
  for (int cycle = 0; cycle < 50 && got.size() < 6; ++cycle) {
    dma.tick(c);
    if (!dma.fifo().empty()) got.push_back(dma.fifo().pop());
  }
  EXPECT_EQ(got, (std::vector<std::uint32_t>{1, 2, 3, 4, 5, 6}));
}

TEST(InputStreamerTest, SurvivesMemoryContention) {
  hwsim::MemoryTiming t;
  t.latency_cycles = 4;
  t.stall_probability = 0.3;
  t.stall_cycles = 7;
  hwsim::MemoryModel mem(512, t, /*seed=*/99);
  std::vector<std::uint32_t> data(100);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint32_t>(i);
  mem.load(0, data);
  InputStreamer dma(mem, 16);
  dma.start(0, data.size());
  hwsim::ActivityCounters c;
  std::vector<std::uint32_t> got;
  for (int cycle = 0; cycle < 5000 && got.size() < data.size(); ++cycle) {
    dma.tick(c);
    while (!dma.fifo().empty()) got.push_back(dma.fifo().pop());
  }
  EXPECT_EQ(got, data);  // contention delays but never corrupts
}

TEST(OutputStreamerTest, WritesLinearly) {
  hwsim::MemoryModel mem(256);
  OutputStreamer dma(mem, 16);
  dma.start(100, 50);
  hwsim::ActivityCounters c;
  for (std::uint32_t v : {11u, 22u, 33u}) dma.fifo().try_push(v);
  for (int cycle = 0; cycle < 10; ++cycle) dma.tick(c);
  EXPECT_EQ(dma.written(), 3u);
  EXPECT_EQ(mem.dump(100, 3), (std::vector<std::uint32_t>{11, 22, 33}));
  EXPECT_EQ(c.dma_write_beats, 3u);
}

TEST(OutputStreamerTest, OverflowingRegionThrows) {
  hwsim::MemoryModel mem(256);
  OutputStreamer dma(mem, 16);
  dma.start(0, 2);
  hwsim::ActivityCounters c;
  dma.fifo().try_push(1);
  dma.fifo().try_push(2);
  dma.fifo().try_push(3);
  dma.tick(c);
  dma.tick(c);
  EXPECT_THROW(dma.tick(c), ConfigError);
}

TEST(InputStreamerTest, StartValidatesRange) {
  hwsim::MemoryModel mem(64);
  InputStreamer dma(mem, 16);
  EXPECT_THROW(dma.start(60, 10), ContractViolation);
}

}  // namespace
}  // namespace sne::core
