// Sequencer and receptive-field arithmetic tests.
#include <gtest/gtest.h>

#include <set>

#include "core/sequencer.h"

namespace sne::core {
namespace {

/// Brute-force reference for receptive_interval.
Interval brute_interval(int e, int kernel, int stride, int pad, int out) {
  Interval r;
  r.lo = out;
  r.hi = -1;
  for (int o = 0; o < out; ++o) {
    for (int k = 0; k < kernel; ++k) {
      if (o * stride - pad + k == e) {
        r.lo = std::min(r.lo, o);
        r.hi = std::max(r.hi, o);
      }
    }
  }
  if (r.hi < r.lo) return Interval{0, -1};
  return r;
}

TEST(ReceptiveInterval, MatchesBruteForce) {
  for (int kernel : {1, 2, 3, 4, 5, 7, 8})
    for (int stride : {1, 2, 3, 4})
      for (int pad : {0, 1, 2, 3})
        for (int out : {1, 4, 9, 16})
          for (int e = 0; e < 24; ++e) {
            const Interval got = receptive_interval(e, kernel, stride, pad, out);
            const Interval want = brute_interval(e, kernel, stride, pad, out);
            ASSERT_EQ(got.empty(), want.empty())
                << "k=" << kernel << " s=" << stride << " p=" << pad
                << " out=" << out << " e=" << e;
            if (!want.empty()) {
              ASSERT_EQ(got.lo, want.lo);
              ASSERT_EQ(got.hi, want.hi);
            }
          }
}

SliceConfig conv_cfg(const SneConfig& hw, std::uint16_t out_w,
                     std::uint16_t out_h, std::uint8_t kernel,
                     std::uint8_t stride, std::uint8_t pad) {
  SliceConfig cfg;
  cfg.kind = LayerKind::kConv;
  cfg.in_channels = 1;
  cfg.in_width = static_cast<std::uint16_t>(out_w * stride);
  cfg.in_height = static_cast<std::uint16_t>(out_h * stride);
  cfg.out_channels = 1;
  cfg.out_width = out_w;
  cfg.out_height = out_h;
  cfg.kernel_w = kernel;
  cfg.kernel_h = kernel;
  cfg.stride = stride;
  cfg.pad = pad;
  cfg.oc_per_slice = 1;
  cfg.clusters = make_tiled_mapping(hw, out_w, out_h, 0, 1);
  return cfg;
}

TEST(SequencerTest, FixedSweepIsExactly48CyclesFor3x3) {
  // The paper's design point: 3x3 kernels, 8x8 tiles -> at most 6 distinct
  // local rows -> a constant 48-slot sweep.
  SneConfig hw = SneConfig::paper_design_point(1);
  Sequencer seq(hw);
  const SliceConfig cfg = conv_cfg(hw, 32, 32, 3, 1, 1);
  for (int ey = 0; ey < 32; ++ey) {
    const auto sched = seq.update_schedule(cfg, 10, ey);
    ASSERT_EQ(sched.size(), hw.update_sweep_cycles) << "ey=" << ey;
  }
}

TEST(SequencerTest, AdaptiveSweepIsShorterInTileInterior) {
  SneConfig hw = SneConfig::paper_design_point(1);
  hw.adaptive_sequencer = true;
  Sequencer seq(hw);
  const SliceConfig cfg = conv_cfg(hw, 32, 32, 3, 1, 1);
  // Event deep inside a tile: RF spans 3 rows of a single tile band -> 24.
  const auto interior = seq.update_schedule(cfg, 10, 4);
  EXPECT_EQ(interior.size(), 24u);
  // Event at a tile boundary: rows split across two bands -> more rows.
  const auto boundary = seq.update_schedule(cfg, 10, 8);
  EXPECT_GT(boundary.size(), 0u);
  EXPECT_LE(boundary.size(), 48u);
}

TEST(SequencerTest, SweepCoversAllReceptiveRows) {
  // Every TDM slot whose neuron could be in the RF must appear in the sweep.
  SneConfig hw = SneConfig::paper_design_point(1);
  Sequencer seq(hw);
  for (std::uint8_t kernel : {1, 3, 5}) {
    const SliceConfig cfg = conv_cfg(hw, 32, 32, kernel,
                                     1, static_cast<std::uint8_t>(kernel / 2));
    for (int ey = 0; ey < 32; ey += 3) {
      const auto sched = seq.update_schedule(cfg, 0, ey);
      std::set<std::uint16_t> slots(sched.begin(), sched.end());
      const Interval oy =
          receptive_interval(ey, kernel, 1, kernel / 2, cfg.out_height);
      for (const ClusterMapping& m : cfg.clusters) {
        if (!m.enabled) continue;
        for (int gy = oy.lo; gy <= oy.hi; ++gy) {
          if (gy < m.y_base ||
              gy >= m.y_base + static_cast<int>(hw.cluster_tile_height()))
            continue;
          const std::uint16_t row = static_cast<std::uint16_t>(gy - m.y_base);
          for (std::uint32_t ccol = 0; ccol < hw.cluster_tile_width; ++ccol)
            ASSERT_TRUE(slots.count(static_cast<std::uint16_t>(
                row * hw.cluster_tile_width + ccol)))
                << "kernel=" << int(kernel) << " ey=" << ey << " row=" << row;
        }
      }
    }
  }
}

TEST(SequencerTest, FcSweepVisitsAllSlots) {
  SneConfig hw = SneConfig::paper_design_point(1);
  Sequencer seq(hw);
  SliceConfig cfg;
  cfg.kind = LayerKind::kFc;
  const auto sched = seq.update_schedule(cfg, 0, 0);
  EXPECT_EQ(sched.size(), hw.neurons_per_cluster);
  std::set<std::uint16_t> slots(sched.begin(), sched.end());
  EXPECT_EQ(slots.size(), hw.neurons_per_cluster);
}

TEST(SequencerTest, FullScheduleForFireAndReset) {
  SneConfig hw = SneConfig::paper_design_point(1);
  Sequencer seq(hw);
  const auto full = seq.full_schedule();
  EXPECT_EQ(full.size(), 64u);
  EXPECT_EQ(full.front(), 0u);
  EXPECT_EQ(full.back(), 63u);
}

TEST(MappingHelpers, TiledMappingCoversWindow) {
  SneConfig hw = SneConfig::paper_design_point(1);
  const auto maps = make_tiled_mapping(hw, 32, 32, 5, 1);
  std::set<std::pair<int, int>> bases;
  for (const auto& m : maps) {
    ASSERT_TRUE(m.enabled);
    EXPECT_EQ(m.out_channel, 5);
    bases.insert({m.x_base, m.y_base});
  }
  EXPECT_EQ(bases.size(), 16u);  // 4x4 distinct tiles
}

TEST(MappingHelpers, TiledMappingMultiChannel) {
  SneConfig hw = SneConfig::paper_design_point(1);
  const auto maps = make_tiled_mapping(hw, 16, 16, 0, 4);
  // 2x2 tiles x 4 channels = 16 clusters, all enabled.
  int per_slot[4] = {0, 0, 0, 0};
  for (const auto& m : maps) {
    ASSERT_TRUE(m.enabled);
    per_slot[m.oc_slot]++;
  }
  for (int c : per_slot) EXPECT_EQ(c, 4);
}

TEST(MappingHelpers, TiledMappingRejectsOversizedWindow) {
  SneConfig hw = SneConfig::paper_design_point(1);
  EXPECT_THROW(make_tiled_mapping(hw, 64, 64, 0, 1), ConfigError);
}

TEST(MappingHelpers, FcMappingDisablesPastEnd) {
  SneConfig hw = SneConfig::paper_design_point(1);
  const auto maps = make_fc_mapping(hw, 0, 100);  // 100 outputs < 2*64
  EXPECT_TRUE(maps[0].enabled);
  EXPECT_TRUE(maps[1].enabled);   // covers ids 64..127 (partially used)
  EXPECT_FALSE(maps[2].enabled);  // 128 >= 100
}

}  // namespace
}  // namespace sne::core
