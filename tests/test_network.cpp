// Multi-layer tests: network chaining, runner-vs-golden equivalence on full
// networks, the pipeline operating mode, and topology shape checks.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/synthetic.h"
#include "ecnn/golden.h"
#include "ecnn/quantized.h"
#include "ecnn/runner.h"
#include "test_util.h"

namespace sne::ecnn {
namespace {

using testutil::canonical_spikes;

TEST(NetworkTopology, PaperTopologyShapesChain) {
  // Fig. 6 on a 144x144-equivalent input yields fc fan-in 9x9x32.
  const Network n = Network::paper_topology(2, 144, 144, 11);
  ASSERT_EQ(n.layers.size(), 7u);
  EXPECT_EQ(n.layers[0].out_w(), 144);
  EXPECT_EQ(n.layers[1].out_w(), 72);
  EXPECT_EQ(n.layers[3].out_w(), 36);
  EXPECT_EQ(n.layers[4].out_w(), 9);
  EXPECT_EQ(n.layers[5].in_flat(), 9u * 9u * 32u);
  EXPECT_EQ(n.layers[5].out_ch, 512);
  EXPECT_EQ(n.layers[6].out_ch, 11);
}

TEST(NetworkTopology, ValidateCatchesBrokenChain) {
  Network n = Network::paper_topology(2, 32, 32, 5, 8, 64);
  n.layers[2].in_w = 99;
  EXPECT_THROW(n.validate(), ConfigError);
}

TEST(FcShapeTest, Factorization) {
  EXPECT_EQ(fc_shape(11).channels, 11);
  EXPECT_EQ(fc_shape(11).width, 1);
  EXPECT_EQ(fc_shape(256).channels, 256);
  EXPECT_EQ(fc_shape(512).channels, 256);
  EXPECT_EQ(fc_shape(512).width, 2);
  EXPECT_EQ(fc_shape(1024).width, 4);
}

TEST(QuantizeNetwork, PoolLayersLowerToOrPooling) {
  const Network n = Network::paper_topology(2, 32, 32, 5, 4, 32);
  const QuantizedNetwork q = quantize(n);
  ASSERT_EQ(q.layers.size(), n.layers.size());
  EXPECT_EQ(q.layers[1].type, LayerSpec::Type::kPool);
  EXPECT_EQ(q.layers[1].lif.v_th, 0);
  EXPECT_EQ(q.layers[1].lif.leak, 0);
}

/// Builds a small random two-conv network for equivalence runs.
QuantizedNetwork small_net(Rng& rng) {
  QuantizedNetwork net;
  QuantizedLayerSpec c1;
  c1.type = LayerSpec::Type::kConv;
  c1.name = "c1";
  c1.in_ch = 2;
  c1.in_w = 16;
  c1.in_h = 16;
  c1.out_ch = 4;
  c1.kernel = 3;
  c1.stride = 1;
  c1.pad = 1;
  c1.weights.resize(4 * 2 * 9);
  for (auto& w : c1.weights) w = static_cast<std::int8_t>(rng.uniform_int(-2, 7));
  c1.lif.v_th = 6;
  c1.lif.leak = 1;

  QuantizedLayerSpec p1;
  p1.type = LayerSpec::Type::kPool;
  p1.name = "p1";
  p1.in_ch = 4;
  p1.in_w = 16;
  p1.in_h = 16;
  p1.out_ch = 4;
  p1.kernel = 2;
  p1.stride = 2;
  p1.pad = 0;
  p1.lif.v_th = 0;

  QuantizedLayerSpec fc;
  fc.type = LayerSpec::Type::kFc;
  fc.name = "fc";
  fc.in_ch = 4;
  fc.in_w = 8;
  fc.in_h = 8;
  fc.out_ch = 5;
  fc.weights.resize(5u * 4u * 64u);
  for (auto& w : fc.weights) w = static_cast<std::int8_t>(rng.uniform_int(-3, 5));
  fc.lif.v_th = 20;
  fc.lif.leak = 0;

  net.layers = {c1, p1, fc};
  return net;
}

TEST(NetworkRunnerTest, FullNetworkMatchesGolden) {
  Rng rng(404);
  const QuantizedNetwork net = small_net(rng);
  const auto in = data::random_stream({2, 16, 16, 12}, 0.05, 2222);

  core::SneConfig hw = core::SneConfig::paper_design_point(4);
  core::SneEngine engine(hw);
  NetworkRunner runner(engine);
  const NetworkRunStats hw_stats = runner.run(net, in);
  const auto gold = GoldenExecutor::run_network(net, in);

  ASSERT_EQ(hw_stats.layers.size(), gold.size());
  for (std::size_t li = 0; li < gold.size(); ++li) {
    EXPECT_EQ(canonical_spikes(hw_stats.layers[li].output),
              canonical_spikes(gold[li].output))
        << "layer " << li;
    EXPECT_EQ(hw_stats.layers[li].input_events, gold[li].input_events);
  }
}

TEST(NetworkRunnerTest, PerLayerStatsAreCoherent) {
  Rng rng(405);
  const QuantizedNetwork net = small_net(rng);
  const auto in = data::random_stream({2, 16, 16, 10}, 0.04, 3333);
  core::SneConfig hw = core::SneConfig::paper_design_point(2);
  core::SneEngine engine(hw);
  NetworkRunner runner(engine);
  const NetworkRunStats s = runner.run(net, in);
  EXPECT_EQ(s.layers.size(), 3u);
  EXPECT_EQ(s.layers[0].input_events, in.update_count());
  // Layer i+1 consumes layer i's output.
  EXPECT_EQ(s.layers[1].input_events, s.layers[0].output_events);
  EXPECT_EQ(s.layers[2].input_events, s.layers[1].output_events);
  EXPECT_GT(s.cycles, 0u);
  EXPECT_GT(s.total.neuron_updates, 0u);
  // Paper-method analytic time is positive and uses 48 cycles/event.
  EXPECT_GT(s.paper_method_time_ms(hw.cycle_ns(), hw.update_sweep_cycles), 0.0);
}

TEST(PipelineMode, TwoStageChainMatchesGolden) {
  // Layer-per-slice pipeline (paper III-D.5, first operating mode): conv on
  // slice 0 streaming its spikes through the C-XBAR into pool on slice 1.
  Rng rng(606);
  QuantizedNetwork net;
  {
    QuantizedLayerSpec c1;
    c1.type = LayerSpec::Type::kConv;
    c1.name = "c1";
    c1.in_ch = 1;
    c1.in_w = 16;
    c1.in_h = 16;
    c1.out_ch = 1;
    c1.kernel = 3;
    c1.stride = 1;
    c1.pad = 1;
    c1.weights.resize(9);
    for (auto& w : c1.weights) w = static_cast<std::int8_t>(rng.uniform_int(1, 7));
    c1.lif.v_th = 5;
    c1.lif.leak = 0;
    QuantizedLayerSpec p1;
    p1.type = LayerSpec::Type::kPool;
    p1.name = "p1";
    p1.in_ch = 1;
    p1.in_w = 16;
    p1.in_h = 16;
    p1.out_ch = 1;
    p1.kernel = 2;
    p1.stride = 2;
    p1.pad = 0;
    p1.lif.v_th = 0;
    net.layers = {c1, p1};
  }
  const auto in = data::random_stream({1, 16, 16, 8}, 0.05, 4444);

  core::SneConfig hw = core::SneConfig::paper_design_point(2);
  core::SneEngine engine(hw);
  Mapper mapper(hw);
  // Configure slice 0 with the conv pass and slice 1 with the pool pass.
  const LayerPlan conv_plan = mapper.plan(net.layers[0], 8);
  const LayerPlan pool_plan = mapper.plan(net.layers[1], 8);
  ASSERT_EQ(conv_plan.rounds.size(), 1u);
  ASSERT_EQ(pool_plan.rounds.size(), 1u);
  engine.configure_slice(0, conv_plan.rounds[0].passes[0].cfg);
  engine.configure_slice(1, pool_plan.rounds[0].passes[0].cfg);
  for (const auto& [set, codes] : conv_plan.rounds[0].passes[0].weight_image)
    for (std::size_t i = 0; i < codes.size(); ++i)
      engine.slice(0).weights().write(set, static_cast<std::uint32_t>(i),
                                      codes[i]);
  for (const auto& [set, codes] : pool_plan.rounds[0].passes[0].weight_image)
    for (std::size_t i = 0; i < codes.size(); ++i)
      engine.slice(1).weights().write(set, static_cast<std::uint32_t>(i),
                                      codes[i]);
  engine.set_routes(core::XbarRoutes::pipeline(2));

  core::RunOptions opts;
  opts.out_geometry = pool_plan.out_geometry;
  const auto r = engine.run(in, opts);

  const auto gold = GoldenExecutor::run_network(net, in);
  EXPECT_EQ(canonical_spikes(r.output), canonical_spikes(gold[1].output));
  // Both layers execute concurrently: total cycles must be well below the
  // serialized sum of two TM passes.
  EXPECT_GT(r.counters.xbar_beats, 0u);
}

TEST(MapperTest, ConvPlanRespectsBufferLimit) {
  Mapper mapper(core::SneConfig::paper_design_point(8));
  QuantizedLayerSpec l;
  l.type = LayerSpec::Type::kConv;
  l.in_ch = 32;
  l.in_w = 16;
  l.in_h = 16;
  l.out_ch = 32;
  l.kernel = 3;
  l.stride = 1;
  l.pad = 1;
  l.weights.resize(static_cast<std::size_t>(32) * 32 * 9);
  l.lif.v_th = 1;
  const LayerPlan plan = mapper.plan(l, 10);
  for (const Round& r : plan.rounds)
    for (const SlicePass& p : r.passes) {
      EXPECT_LE(static_cast<std::uint32_t>(p.cfg.in_channels) *
                    p.cfg.oc_per_slice,
                256u);
      EXPECT_NO_THROW(p.cfg.validate(16, 256, 64));
    }
  EXPECT_EQ(plan.out_geometry.channels, 32);
}

TEST(MapperTest, FcResidencySelection) {
  Mapper mapper(core::SneConfig::paper_design_point(1));
  QuantizedLayerSpec fc;
  fc.type = LayerSpec::Type::kFc;
  fc.in_ch = 1;
  fc.in_w = 4;
  fc.in_h = 4;  // 16 positions -> resident
  fc.out_ch = 8;
  fc.weights.resize(8 * 16);
  fc.lif.v_th = 1;
  EXPECT_FALSE(
      mapper.plan(fc, 4).rounds[0].passes[0].cfg.fc_weights_streamed);
  fc.in_w = 8;  // 32 positions -> streamed
  fc.weights.resize(8 * 32);
  EXPECT_TRUE(mapper.plan(fc, 4).rounds[0].passes[0].cfg.fc_weights_streamed);
}

TEST(GoldenClassCounts, ReadoutDecodesShapedFcOutput) {
  event::EventStream out(event::StreamGeometry{5, 1, 1, 4});
  out.push_update(0, 3, 0, 0);
  out.push_update(1, 3, 0, 0);
  out.push_update(2, 1, 0, 0);
  const auto counts = GoldenExecutor::class_spike_counts(out, 5);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[0], 0u);
}

}  // namespace
}  // namespace sne::ecnn
