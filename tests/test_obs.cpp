// Telemetry-layer regression suite (sne::obs).
//
// Three contracts under test:
//   1. Registry correctness — exposition golden (byte-stable Prometheus
//      text), le boundary semantics, label canonicalization/escaping, and
//      type-conflict rejection.
//   2. Tracer determinism — span ids are pure functions of semantic
//      coordinates, so the id set of a served workload is identical under
//      1 or N dispatch workers; request spans contain their lease/simulate
//      children; rings stay bounded; the disabled path records nothing.
//   3. Observation-only invariant — arming the profiler and tracer changes
//      no simulated bit: engine runs and served requests compare bitwise
//      equal with telemetry on and off, and the profiler's per-mode cycle
//      attribution sums exactly to the run's total cycles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/engine.h"
#include "data/synthetic.h"
#include "ecnn/engine_pool.h"
#include "ecnn/runner.h"
#include "obs/adapters.h"
#include "obs/metrics.h"
#include "obs/run_profile.h"
#include "obs/trace.h"
#include "serve/pipeline.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/session.h"

namespace sne {
namespace {

using core::SneConfig;
using core::SneEngine;
using ecnn::NetworkRunner;
using ecnn::NetworkRunStats;
using ecnn::QuantizedLayerSpec;
using ecnn::QuantizedNetwork;

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CounterGaugeBasics) {
  obs::MetricsRegistry reg;
  auto& c = reg.counter("sne_test_total");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.set(17);
  EXPECT_EQ(c.value(), 17u);
  // Same (name, labels) resolves to the same series.
  EXPECT_EQ(&reg.counter("sne_test_total"), &c);

  auto& g = reg.gauge("sne_test_depth");
  g.set(2.0);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  EXPECT_EQ(reg.family_count(), 2u);
}

TEST(MetricsRegistry, HistogramBoundarySemantics) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("sne_test_hist", {1.0, 2.0, 5.0});
  h.observe(-3.0);  // below the first bound -> first bucket
  h.observe(1.0);   // exactly on a bound -> that bucket (le semantics)
  h.observe(1.5);
  h.observe(5.0);   // exactly on the last finite bound
  h.observe(5.1);   // past every bound -> +Inf bucket
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), -3.0 + 1.0 + 1.5 + 5.0 + 5.1);
}

TEST(MetricsRegistry, PrometheusExpositionGolden) {
  obs::MetricsRegistry reg;
  reg.counter("sne_test_requests_total", {{"tenant", "a\"b\\c\nd"}},
              "requests admitted")
      .inc(3);
  reg.gauge("sne_test_depth", {}, "queue depth").set(2.5);
  auto& h = reg.histogram("sne_test_latency_ms", {1.0, 2.5, 10.0},
                          {{"path", "p"}}, "request latency");
  h.observe(0.5);
  h.observe(1.0);
  h.observe(2.0);
  h.observe(10.5);
  // Families in name order, series in canonical label order, cumulative le
  // buckets, exact integers without a fraction — byte for byte.
  const std::string expected =
      "# HELP sne_test_depth queue depth\n"
      "# TYPE sne_test_depth gauge\n"
      "sne_test_depth 2.5\n"
      "# HELP sne_test_latency_ms request latency\n"
      "# TYPE sne_test_latency_ms histogram\n"
      "sne_test_latency_ms_bucket{le=\"1\",path=\"p\"} 2\n"
      "sne_test_latency_ms_bucket{le=\"2.5\",path=\"p\"} 3\n"
      "sne_test_latency_ms_bucket{le=\"10\",path=\"p\"} 3\n"
      "sne_test_latency_ms_bucket{le=\"+Inf\",path=\"p\"} 4\n"
      "sne_test_latency_ms_sum{path=\"p\"} 14\n"
      "sne_test_latency_ms_count{path=\"p\"} 4\n"
      "# HELP sne_test_requests_total requests admitted\n"
      "# TYPE sne_test_requests_total counter\n"
      "sne_test_requests_total{tenant=\"a\\\"b\\\\c\\nd\"} 3\n";
  EXPECT_EQ(reg.prometheus_text(), expected);
}

TEST(MetricsRegistry, JsonSnapshotShape) {
  obs::MetricsRegistry reg;
  reg.counter("sne_test_total", {{"k", "v"}}).inc(7);
  reg.histogram("sne_test_hist", {1.0}).observe(0.5);
  const std::string json = reg.json_snapshot();
  EXPECT_NE(json.find("{\"metrics\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sne_test_total\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"k\":\"v\"},\"value\":7"),
            std::string::npos);
  EXPECT_NE(json.find("\"le\":\"+Inf\",\"count\":1"), std::string::npos);
}

TEST(MetricsRegistry, RejectsConflictsAndBadNames) {
  obs::MetricsRegistry reg;
  reg.counter("sne_test_total");
  EXPECT_THROW(reg.gauge("sne_test_total"), ConfigError);
  reg.histogram("sne_test_hist", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("sne_test_hist", {1.0, 3.0}), ConfigError);
  EXPECT_THROW(reg.histogram("sne_test_bad", {2.0, 1.0}), ConfigError);
  EXPECT_THROW(reg.counter("1bad"), ConfigError);
  EXPECT_THROW(reg.counter("ok", {{"dup", "a"}, {"dup", "b"}}), ConfigError);
  EXPECT_THROW(reg.counter("ok", {{"bad-label", "a"}}), ConfigError);
}

// ---------------------------------------------------------------------------
// Shared workload helpers (mirrors test_serve.cpp's three-layer chain)
// ---------------------------------------------------------------------------

QuantizedLayerSpec conv_layer(std::uint16_t in_ch, std::uint16_t size,
                              std::uint16_t out_ch, std::int32_t v_th,
                              std::uint64_t seed, std::int32_t w_lo = -4,
                              std::int32_t w_hi = 7) {
  QuantizedLayerSpec l;
  l.type = ecnn::LayerSpec::Type::kConv;
  l.name = "conv";
  l.in_ch = in_ch;
  l.in_w = size;
  l.in_h = size;
  l.out_ch = out_ch;
  l.kernel = 3;
  l.stride = 1;
  l.pad = 1;
  l.weights.resize(static_cast<std::size_t>(out_ch) * in_ch * 9);
  Rng rng(seed);
  for (auto& w : l.weights)
    w = static_cast<std::int8_t>(rng.uniform_int(w_lo, w_hi));
  l.lif.v_th = v_th;
  l.lif.leak = 1;
  return l;
}

QuantizedNetwork small_net() {
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(1, 16, 8, 4, 11));
  return net;
}

/// Spike-dense single conv (zero threshold, positive weights): the drain
/// chain dominates, so the bulk-span and burst machines all execute.
QuantizedNetwork dense_net(std::uint32_t slices) {
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(1, 16, static_cast<std::uint16_t>(4 * slices),
                                  0, 5, 1, 7));
  return net;
}

void expect_stats_equal(const NetworkRunStats& ref,
                        const NetworkRunStats& got) {
  EXPECT_EQ(ref.cycles, got.cycles);
  EXPECT_TRUE(ref.total == got.total);
  ASSERT_EQ(ref.layers.size(), got.layers.size());
  for (std::size_t i = 0; i < ref.layers.size(); ++i) {
    EXPECT_EQ(ref.layers[i].cycles, got.layers[i].cycles) << "layer " << i;
    EXPECT_TRUE(ref.layers[i].counters == got.layers[i].counters)
        << "layer " << i;
    EXPECT_TRUE(ref.layers[i].output == got.layers[i].output) << "layer " << i;
  }
  EXPECT_TRUE(ref.final_output == got.final_output);
}

// ---------------------------------------------------------------------------
// Replay profiler
// ---------------------------------------------------------------------------

TEST(RunProfile, DisabledRunsProduceEmptyProfiles) {
  ASSERT_FALSE(obs::profiling_enabled());
  SneEngine engine(SneConfig::paper_design_point(2));
  NetworkRunner runner(engine, /*use_wload_stream=*/false);
  const auto in = data::random_stream({1, 16, 16, 8}, 0.05, 42);
  const auto stats = runner.run(small_net(), in);
  EXPECT_TRUE(stats.profile.empty());
  EXPECT_EQ(stats.profile.mode_cycles_total(), 0u);
}

TEST(RunProfile, ModeCyclesSumToTotalAndResultsAreBitwiseIdentical) {
  SneConfig hw = SneConfig::paper_design_point(4);
  hw.fast_forward = true;
  hw.drain_batching = true;
  const auto net = dense_net(4);
  const auto in = data::random_stream({1, 16, 16, 20}, 0.1, 177);

  SneEngine ref_engine(hw);
  NetworkRunner ref_runner(ref_engine, false);
  const auto ref = ref_runner.run(net, in);
  EXPECT_TRUE(ref.profile.empty());

  SneEngine prof_engine(hw);
  NetworkRunner prof_runner(prof_engine, false);
  NetworkRunStats got;
  {
    obs::ScopedProfiling profiling;
    got = prof_runner.run(net, in);
  }
  // The profiler only observes: simulation output is bit for bit the
  // reference, and every retired cycle is attributed to exactly one mode.
  expect_stats_equal(ref, got);
  ASSERT_FALSE(got.profile.empty());
  EXPECT_EQ(got.profile.mode_cycles_total(), got.cycles);
  EXPECT_GT(got.profile.drain_spans, 0u);
  EXPECT_GT(got.profile.steady_cycles + got.profile.bulk_replay_cycles, 0u);
  std::uint64_t hist_total = 0;
  for (const auto b : got.profile.span_hist) hist_total += b;
  EXPECT_EQ(hist_total, got.profile.drain_spans);
  ASSERT_EQ(got.profile.slice_busy.size(), 4u);
  for (const auto busy : got.profile.slice_busy) EXPECT_LE(busy, got.cycles);
  EXPECT_EQ(got.profile.passes_total, got.passes_total);
}

TEST(RunProfile, PerCycleAndBatchedProfilesAgreeOnTotals) {
  // The per-cycle reference engine and the batched drain engine attribute
  // cycles to different modes, but both must cover the same (bit-identical)
  // total.
  const auto net = dense_net(2);
  const auto in = data::random_stream({1, 16, 16, 12}, 0.1, 99);
  NetworkRunStats slow, fast;
  {
    obs::ScopedProfiling profiling;
    SneConfig hw = SneConfig::paper_design_point(2);
    hw.fast_forward = false;
    hw.drain_batching = false;
    SneEngine e1(hw);
    NetworkRunner r1(e1, false);
    slow = r1.run(net, in);
    hw.fast_forward = true;
    hw.drain_batching = true;
    SneEngine e2(hw);
    NetworkRunner r2(e2, false);
    fast = r2.run(net, in);
  }
  EXPECT_EQ(slow.cycles, fast.cycles);
  EXPECT_EQ(slow.profile.mode_cycles_total(), slow.cycles);
  EXPECT_EQ(fast.profile.mode_cycles_total(), fast.cycles);
  // The reference engine never runs the specialized machines...
  EXPECT_EQ(slow.profile.burst_cycles, 0u);
  EXPECT_EQ(slow.profile.steady_cycles, 0u);
  EXPECT_EQ(slow.profile.bulk_replay_cycles, 0u);
  // ...while the batched engine moves most drain work into them.
  EXPECT_GT(fast.profile.steady_cycles + fast.profile.burst_cycles +
                fast.profile.bulk_replay_cycles,
            0u);
}

// ---------------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------------

TEST(Tracer, DisabledPathRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.arm();
  tracer.disarm();
  {
    obs::ScopedSpan span("test.span", 1);
    obs::trace_instant("test.instant", 2);
  }
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RingStaysBoundedAndCountsDrops) {
  obs::Tracer& tracer = obs::Tracer::instance();
  obs::Tracer::Config cfg;
  cfg.ring_capacity = 4;
  tracer.arm(cfg);
  for (std::uint64_t i = 0; i < 20; ++i) obs::trace_instant("test.tick", i);
  tracer.disarm();
  const auto spans = tracer.collect();
  EXPECT_EQ(spans.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 16u);
  // The ring keeps the newest spans.
  for (const auto& s : spans) EXPECT_GE(s.arg, 16u);
  tracer.arm();  // restore the default capacity for later tests
  tracer.disarm();
}

TEST(Tracer, ChromeTraceJsonShape) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.arm();
  {
    obs::ScopedCorr corr(7);
    obs::ScopedSpan outer("test.outer", 1);
    obs::trace_instant("test.mark", 2);
  }
  tracer.disarm();
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

std::vector<event::EventStream> serve_inputs() {
  std::vector<event::EventStream> inputs;
  for (std::uint64_t s = 0; s < 6; ++s)
    inputs.push_back(data::random_stream({1, 16, 16, 8}, 0.08, 500 + s));
  return inputs;
}

std::vector<NetworkRunStats> serve_batch(unsigned workers) {
  serve::ModelRegistry models;
  models.put("m", small_net());
  serve::ServeOptions so;
  so.engines = workers;
  so.reuse_engines = true;
  // Strict tier: every request reprograms, so the span vocabulary (and the
  // results) cannot depend on which pooled engine a request happens to land
  // on — warm-skip spans are scheduling-dependent by design.
  so.warm_weights = false;
  serve::InferenceServer server(models, SneConfig::paper_design_point(2), so);
  std::vector<serve::Ticket> tickets;
  for (const auto& in : serve_inputs()) tickets.push_back(server.submit("m", in));
  std::vector<NetworkRunStats> out;
  for (const auto& t : tickets) out.push_back(t.wait());
  return out;
}

/// Runs the pooled serve workload under `workers` dispatch threads with the
/// tracer armed and returns the collected spans (server destroyed first, so
/// every worker has flushed its spans).
std::vector<obs::Tracer::CollectedSpan> traced_serve(unsigned workers) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.arm();
  serve_batch(workers);
  auto spans = obs::Tracer::instance().collect();
  tracer.disarm();
  return spans;
}

TEST(Tracer, SpanIdSetIsWorkerCountInvariant) {
  const auto one = traced_serve(1);
  const auto four = traced_serve(4);
  ASSERT_FALSE(one.empty());
  // Span ids are FNV over (name, corr, arg) — semantic coordinates only —
  // so scheduling across 1 vs 4 workers cannot change the id set.
  std::set<std::uint64_t> ids1, ids4;
  for (const auto& s : one) ids1.insert(s.id);
  for (const auto& s : four) ids4.insert(s.id);
  EXPECT_EQ(ids1, ids4);
  for (const auto& s : one)
    if (!ids4.count(s.id))
      ADD_FAILURE() << "only in 1-worker run: " << s.name << " corr=" << s.corr
                    << " arg=" << s.arg;
  for (const auto& s : four)
    if (!ids1.count(s.id))
      ADD_FAILURE() << "only in 4-worker run: " << s.name << " corr=" << s.corr
                    << " arg=" << s.arg;
  // The request lifecycle vocabulary is all present.
  std::set<std::string> names;
  for (const auto& s : one) names.insert(s.name);
  for (const char* expect :
       {"serve.submit", "serve.queue", "serve.dispatch", "serve.request",
        "ecnn.pool.lease", "ecnn.layer", "ecnn.program", "ecnn.simulate",
        "serve.settle"})
    EXPECT_TRUE(names.count(expect)) << "missing span name " << expect;
}

TEST(Tracer, RequestSpansContainTheirLeaseAndSimulateSpans) {
  const auto spans = traced_serve(2);
  std::vector<const obs::Tracer::CollectedSpan*> requests;
  for (const auto& s : spans)
    if (s.name == "serve.request") requests.push_back(&s);
  ASSERT_EQ(requests.size(), 6u);
  std::size_t children = 0;
  for (const auto& s : spans) {
    if (s.name != "ecnn.pool.lease" && s.name != "ecnn.simulate") continue;
    ++children;
    bool contained = false;
    for (const auto* r : requests)
      if (r->corr == s.corr && s.t0_ns >= r->t0_ns && s.t1_ns <= r->t1_ns)
        contained = true;
    EXPECT_TRUE(contained) << s.name << " span outside its request span";
  }
  EXPECT_GE(children, 12u);  // one lease + at least one simulate per request
}

TEST(Tracer, ServedResultsAreBitwiseIdenticalWithTelemetryOn) {
  const auto ref = serve_batch(2);
  std::vector<NetworkRunStats> got;
  {
    obs::Tracer::instance().arm();
    obs::ScopedProfiling profiling;
    got = serve_batch(2);
    obs::Tracer::instance().disarm();
  }
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    expect_stats_equal(ref[i], got[i]);
  // With profiling armed, served stats carry the cycle attribution too.
  for (const auto& s : got) {
    ASSERT_FALSE(s.profile.empty());
    EXPECT_EQ(s.profile.mode_cycles_total(), s.cycles);
  }
}

/// conv -> conv chain that fits pipeline operating mode on the 2-slice design
/// point (single round / single pass per layer) — mirrors test_tenants.cpp.
QuantizedNetwork two_stage_net() {
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(1, 16, 2, 4, 31));
  auto l2 = conv_layer(2, 16, 2, 5, 32);
  l2.name = "conv2";
  net.layers.push_back(l2);
  return net;
}

/// Splits a raw stream into chunk-local pieces of `chunk_t` timesteps.
std::vector<event::EventStream> split_chunks(const event::EventStream& full,
                                             std::uint16_t chunk_t) {
  std::vector<event::EventStream> chunks;
  const std::uint16_t total = full.geometry().timesteps;
  for (std::uint16_t t0 = 0; t0 < total; t0 += chunk_t) {
    event::StreamGeometry g = full.geometry();
    g.timesteps = std::min<std::uint16_t>(chunk_t, total - t0);
    event::EventStream c(g);
    for (event::Event e : full.events())
      if (e.t >= t0 && e.t < t0 + g.timesteps) {
        e.t = static_cast<std::uint16_t>(e.t - t0);
        c.push(e);
      }
    chunks.push_back(std::move(c));
  }
  return chunks;
}

TEST(Tracer, WarmServeIsBitwiseIdenticalWithTelemetryOn) {
  // Warm lease order is scheduling-dependent across workers, so the warm
  // spot check pins one engine / one worker: requests lease it FIFO, the
  // first run programs, the rest warm-skip — deterministically.
  const auto serve_warm = [] {
    serve::ModelRegistry models;
    models.put("m", small_net());
    serve::ServeOptions so;
    so.engines = 1;
    so.reuse_engines = true;
    so.warm_weights = true;
    serve::InferenceServer server(models, SneConfig::paper_design_point(2),
                                  so);
    std::vector<serve::Ticket> tickets;
    for (const auto& in : serve_inputs())
      tickets.push_back(server.submit("m", in));
    std::vector<NetworkRunStats> out;
    for (const auto& t : tickets) out.push_back(t.wait());
    return out;
  };
  const auto ref = serve_warm();
  std::vector<NetworkRunStats> got;
  {
    obs::Tracer::instance().arm();
    obs::ScopedProfiling profiling;
    got = serve_warm();
    obs::Tracer::instance().disarm();
  }
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    expect_stats_equal(ref[i], got[i]);
  // The traced warm run recorded warm-skip spans for the reused leases.
  std::set<std::string> names;
  for (const auto& s : obs::Tracer::instance().collect()) names.insert(s.name);
  EXPECT_TRUE(names.count("ecnn.warm_skip"));
}

TEST(Tracer, PipelineResultsAreBitwiseIdenticalWithTelemetryOn) {
  const SneConfig hw = SneConfig::paper_design_point(2);
  const auto net = two_stage_net();
  std::vector<event::EventStream> inputs;
  for (std::uint64_t s = 0; s < 4; ++s)
    inputs.push_back(data::random_stream({1, 16, 16, 10}, 0.08, 800 + s));
  const auto run_pipe = [&] {
    serve::PipelineOptions po;
    po.stages = 2;
    po.memory_words = 1u << 20;
    po.weight_resident = false;  // strict tier: reprogram every request
    serve::PipelineDeployment deployment(hw, net, po);
    return deployment.run(inputs);
  };
  const auto ref = run_pipe();
  std::vector<NetworkRunStats> got;
  {
    obs::Tracer::instance().arm();
    obs::ScopedProfiling profiling;
    got = run_pipe();
    obs::Tracer::instance().disarm();
  }
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    expect_stats_equal(ref[i], got[i]);
}

TEST(Tracer, SessionChunksAreBitwiseIdenticalWithTelemetryOn) {
  const SneConfig hw = SneConfig::paper_design_point(2);
  const auto net = two_stage_net();
  const auto model = std::make_shared<const QuantizedNetwork>(net);
  const auto full = data::random_stream({1, 16, 16, 12}, 0.08, 321);
  const auto run_session = [&] {
    ecnn::EnginePoolOptions po;
    po.memory_words = 1u << 20;
    ecnn::EnginePool pool(hw, 0, po);
    serve::SessionOptions sopts;
    sopts.horizon_timesteps = 12;
    serve::StreamingSession session(pool, model, sopts);
    std::vector<NetworkRunStats> out;
    for (auto& chunk : split_chunks(full, 4))
      out.push_back(session.feed(std::move(chunk)).wait());
    session.close();
    return out;
  };
  const auto ref = run_session();
  std::vector<NetworkRunStats> got;
  {
    obs::Tracer::instance().arm();
    obs::ScopedProfiling profiling;
    got = run_session();
    obs::Tracer::instance().disarm();
  }
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    expect_stats_equal(ref[i], got[i]);
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

TEST(Adapters, ServerStatsPublishHeadlineAndTenantSeries) {
  serve::ModelRegistry models;
  models.put("m", small_net());
  serve::ServeOptions so;
  so.engines = 2;
  so.reuse_engines = true;
  serve::InferenceServer server(models, SneConfig::paper_design_point(2), so);
  std::vector<serve::Ticket> tickets;
  for (const auto& in : serve_inputs()) tickets.push_back(server.submit("m", in));
  for (const auto& t : tickets) t.wait();

  obs::MetricsRegistry reg;
  obs::publish_server_stats(reg, server.stats());
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("sne_server_submitted_total 6\n"), std::string::npos);
  EXPECT_NE(text.find("sne_server_completed_total 6\n"), std::string::npos);
  // The default tenant's empty name exports as tenant="default".
  EXPECT_NE(text.find("sne_tenant_submitted_total{tenant=\"default\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("sne_server_engine_leases_total 6\n"),
            std::string::npos);
  // Republishing a fresher snapshot updates series in place, never
  // duplicates them (gauges like uptime move, so compare structure).
  const std::size_t families = reg.family_count();
  obs::publish_server_stats(reg, server.stats());
  EXPECT_EQ(reg.family_count(), families);
  const std::string again = reg.prometheus_text();
  std::size_t hits = 0;
  for (std::size_t pos = again.find("\nsne_server_submitted_total ");
       pos != std::string::npos;
       pos = again.find("\nsne_server_submitted_total ", pos + 1))
    ++hits;
  EXPECT_EQ(hits, 1u);
}

TEST(Adapters, FaultSiteStatsPublishPerSiteSeries) {
  faults::FaultConfig cfg;
  cfg.seed = 7;
  cfg.rules.push_back(faults::FaultRule{"serve.server.dispatch", {2}, 0.0, 0.0});
  faults::ScopedFaults chaos(std::move(cfg));
  EXPECT_NO_THROW(faults::check("serve.server.dispatch"));
  EXPECT_THROW(faults::check("serve.server.dispatch"), faults::FaultError);
  EXPECT_NO_THROW(faults::check("serve.server.dispatch"));

  obs::MetricsRegistry reg;
  obs::publish_fault_stats(reg);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(
      text.find(
          "sne_fault_site_hits_total{site=\"serve.server.dispatch\"} 3\n"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "sne_fault_site_fired_total{site=\"serve.server.dispatch\"} 1\n"),
      std::string::npos);
}

TEST(Adapters, RunProfilePublishesModeSplitAndSkipsEmptyProfiles) {
  obs::MetricsRegistry reg;
  obs::publish_run_profile(reg, obs::RunProfile{});
  EXPECT_EQ(reg.family_count(), 0u);  // empty profile is a no-op

  SneConfig hw = SneConfig::paper_design_point(2);
  hw.fast_forward = true;
  hw.drain_batching = true;
  SneEngine engine(hw);
  NetworkRunner runner(engine, false);
  NetworkRunStats stats;
  {
    obs::ScopedProfiling profiling;
    stats = runner.run(dense_net(2), data::random_stream({1, 16, 16, 8}, 0.1, 3));
  }
  obs::publish_run_profile(reg, stats.profile, {{"run", "t"}});
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("sne_profile_mode_cycles_total{mode=\"steady\",run=\"t\"}"),
            std::string::npos);
  EXPECT_NE(text.find("sne_profile_slice_busy_cycles_total{run=\"t\",slice=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("sne_profile_drain_spans_total{run=\"t\"}"),
            std::string::npos);
}

TEST(Adapters, ActivityCountersPublishEnergySignal) {
  SneEngine engine(SneConfig::paper_design_point(2));
  NetworkRunner runner(engine, false);
  const auto stats = runner.run(small_net(),
                                data::random_stream({1, 16, 16, 8}, 0.08, 4));
  obs::MetricsRegistry reg;
  obs::publish_activity_counters(reg, stats.total);
  EXPECT_GT(reg.family_count(), 10u);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("sne_activity_"), std::string::npos);
}

}  // namespace
}  // namespace sne
