// Fast-forward equivalence regression suite.
//
// SneConfig::fast_forward compresses provably-inactive cycle spans and
// stall-free TDM sweeps into bulk host operations. The contract is strict:
// cycle counts, every ActivityCounters field, and the output event stream
// (exact sequence, not just the spike set) must be bit-identical to the
// per-cycle reference path across every scenario the engine models. This
// suite runs each scenario twice — fast_forward on and off — and compares.
//
// Also covered: BatchRunner determinism (results independent of the worker
// count and identical to serial simulation).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/synthetic.h"
#include "ecnn/batch_runner.h"
#include "ecnn/runner.h"
#include "test_util.h"

namespace sne {
namespace {

using core::SneConfig;
using core::SneEngine;
using ecnn::NetworkRunner;
using ecnn::NetworkRunStats;
using ecnn::QuantizedLayerSpec;
using ecnn::QuantizedNetwork;

QuantizedLayerSpec conv_layer(std::uint16_t in_ch, std::uint16_t size,
                              std::uint16_t out_ch, std::int32_t v_th,
                              std::uint64_t seed) {
  QuantizedLayerSpec l;
  l.type = ecnn::LayerSpec::Type::kConv;
  l.name = "conv";
  l.in_ch = in_ch;
  l.in_w = size;
  l.in_h = size;
  l.out_ch = out_ch;
  l.kernel = 3;
  l.stride = 1;
  l.pad = 1;
  l.weights.resize(static_cast<std::size_t>(out_ch) * in_ch * 9);
  Rng rng(seed);
  for (auto& w : l.weights) w = static_cast<std::int8_t>(rng.uniform_int(-4, 7));
  l.lif.v_th = v_th;
  l.lif.leak = 1;
  return l;
}

QuantizedLayerSpec fc_layer(std::uint16_t in_ch, std::uint16_t size,
                            std::uint16_t outputs, std::uint64_t seed) {
  QuantizedLayerSpec l;
  l.type = ecnn::LayerSpec::Type::kFc;
  l.name = "fc";
  l.in_ch = in_ch;
  l.in_w = size;
  l.in_h = size;
  l.out_ch = outputs;
  l.weights.resize(static_cast<std::size_t>(outputs) * l.in_flat());
  Rng rng(seed);
  for (auto& w : l.weights) w = static_cast<std::int8_t>(rng.uniform_int(-7, 7));
  l.lif.v_th = 9;
  l.lif.leak = 1;
  return l;
}

/// Runs `net` on `input` through NetworkRunner with the given fast_forward
/// setting, on a fresh engine.
NetworkRunStats run_network(SneConfig hw, bool fast, const QuantizedNetwork& net,
                            const event::EventStream& input) {
  hw.fast_forward = fast;
  SneEngine engine(hw, 1u << 20);
  NetworkRunner runner(engine, /*use_wload_stream=*/false);
  return runner.run(net, input);
}

void expect_equivalent(const NetworkRunStats& ref, const NetworkRunStats& fast) {
  EXPECT_EQ(ref.cycles, fast.cycles);
  EXPECT_TRUE(ref.total == fast.total) << "counters diverge:\nref:  " << ref.total
                                       << "\nfast: " << fast.total;
  ASSERT_EQ(ref.layers.size(), fast.layers.size());
  for (std::size_t i = 0; i < ref.layers.size(); ++i) {
    EXPECT_EQ(ref.layers[i].cycles, fast.layers[i].cycles) << "layer " << i;
    EXPECT_TRUE(ref.layers[i].counters == fast.layers[i].counters)
        << "layer " << i;
    // Exact event sequence, not just the canonical spike set.
    EXPECT_TRUE(ref.layers[i].output == fast.layers[i].output) << "layer " << i;
  }
  EXPECT_TRUE(ref.final_output == fast.final_output);
}

/// Runs `net` on `input` with an explicit full hardware config (fast_forward
/// and drain_batching as given), on a fresh engine.
NetworkRunStats run_network_cfg(const SneConfig& hw, const QuantizedNetwork& net,
                                const event::EventStream& input,
                                std::size_t memory_words = 1u << 20) {
  SneEngine engine(hw, memory_words);
  NetworkRunner runner(engine, /*use_wload_stream=*/false);
  return runner.run(net, input);
}

/// Three-way equivalence: per-cycle reference vs fast-forward vs
/// fast-forward + batched drain engine, all bit-identical.
void expect_drain_equivalent(SneConfig hw, const QuantizedNetwork& net,
                             const event::EventStream& input,
                             std::size_t memory_words = 1u << 20) {
  hw.fast_forward = false;
  hw.drain_batching = false;
  const auto ref = run_network_cfg(hw, net, input, memory_words);
  hw.fast_forward = true;
  const auto fast = run_network_cfg(hw, net, input, memory_words);
  hw.drain_batching = true;
  const auto drain = run_network_cfg(hw, net, input, memory_words);
  expect_equivalent(ref, fast);
  expect_equivalent(ref, drain);
}

TEST(FastForwardEquivalence, ConvLayerTimeMultiplexed) {
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(2, 32, 4, 6, 5));
  const auto in = data::random_stream({2, 32, 32, 20}, 0.03, 99);
  const SneConfig hw = SneConfig::paper_design_point(4);
  const auto ref = run_network(hw, false, net, in);
  const auto fast = run_network(hw, true, net, in);
  ASSERT_GT(fast.total.output_events, 0u);  // scenario actually spikes
  expect_equivalent(ref, fast);
}

TEST(FastForwardEquivalence, ConvSilentNetwork) {
  // High threshold: FIRE scans are spike-free end to end, exercising the
  // batched no-spike scan and the marker-elision drain path.
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(2, 32, 4, 120, 5));
  const auto in = data::random_stream({2, 32, 32, 10}, 0.05, 7);
  const SneConfig hw = SneConfig::paper_design_point(2);
  const auto ref = run_network(hw, false, net, in);
  const auto fast = run_network(hw, true, net, in);
  EXPECT_EQ(fast.total.output_events, 0u);
  expect_equivalent(ref, fast);
}

TEST(FastForwardEquivalence, StreamedFcLayer) {
  // An FC layer too large for the filter buffer streams its weights from
  // the second DMA (fc_weights_streamed), stretching event occupancy.
  QuantizedNetwork net;
  net.layers.push_back(fc_layer(2, 16, 48, 11));
  const auto in = data::random_stream({2, 16, 16, 12}, 0.06, 21);
  const SneConfig hw = SneConfig::paper_design_point(4);
  const auto ref = run_network(hw, false, net, in);
  const auto fast = run_network(hw, true, net, in);
  ASSERT_GT(ref.total.weight_load_beats, 0u);  // streaming path exercised
  expect_equivalent(ref, fast);
}

TEST(FastForwardEquivalence, MultiSlicePipeline) {
  // Pipeline operating mode: conv -> conv chained through the C-XBAR, all
  // stages concurrently active (slice-to-slice hops + per-cycle FIRE).
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(1, 16, 2, 4, 3));
  auto l2 = conv_layer(2, 16, 2, 5, 4);
  l2.name = "conv2";
  net.layers.push_back(l2);
  const auto in = data::random_stream({1, 16, 16, 12}, 0.08, 13);

  event::EventStream outputs[2];
  hwsim::ActivityCounters counters[2];
  std::uint64_t cycles[2];
  int k = 0;
  for (bool fast : {false, true}) {
    SneConfig hw = SneConfig::paper_design_point(2);
    hw.fast_forward = fast;
    SneEngine engine(hw, 1u << 20);
    const auto geom = ecnn::build_pipeline(engine, net, in.geometry().timesteps);
    core::RunOptions opts;
    opts.out_geometry = geom;
    const auto r = engine.run(in, opts);
    outputs[k] = r.output;
    counters[k] = r.counters;
    cycles[k] = r.cycles;
    ++k;
  }
  EXPECT_EQ(cycles[0], cycles[1]);
  EXPECT_TRUE(counters[0] == counters[1]);
  EXPECT_TRUE(outputs[0] == outputs[1]);
  EXPECT_GT(counters[0].output_events, 0u);
}

TEST(FastForwardEquivalence, FifoStallScenario) {
  // Tiny FIFOs + near-zero threshold: FIRE sweeps stall on full cluster
  // FIFOs, the hardest interleaving for the batched paths to respect.
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(1, 16, 2, 0, 17));
  const auto in = data::random_stream({1, 16, 16, 10}, 0.15, 41);
  SneConfig hw = SneConfig::paper_design_point(1);
  hw.cluster_fifo_depth = 1;
  hw.slice_out_fifo_depth = 2;
  hw.dma_fifo_depth = 2;
  const auto ref = run_network(hw, false, net, in);
  const auto fast = run_network(hw, true, net, in);
  ASSERT_GT(ref.total.fifo_stall_cycles, 0u);  // stalls actually happen
  expect_equivalent(ref, fast);
}

TEST(FastForwardEquivalence, SingleBufferedState) {
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(2, 16, 2, 6, 23));
  const auto in = data::random_stream({2, 16, 16, 10}, 0.05, 3);
  SneConfig hw = SneConfig::paper_design_point(2);
  hw.double_buffered_state = false;  // 2-cycle updates
  const auto ref = run_network(hw, false, net, in);
  const auto fast = run_network(hw, true, net, in);
  expect_equivalent(ref, fast);
}

TEST(FastForwardEquivalence, AdaptiveSequencer) {
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(2, 16, 2, 6, 29));
  const auto in = data::random_stream({2, 16, 16, 10}, 0.05, 3);
  SneConfig hw = SneConfig::paper_design_point(2);
  hw.adaptive_sequencer = true;
  const auto ref = run_network(hw, false, net, in);
  const auto fast = run_network(hw, true, net, in);
  expect_equivalent(ref, fast);
}

TEST(FastForwardEquivalence, ClockGatingOffAndNegativeThreshold) {
  // Negative thresholds disable the armed-slot acceleration (toward-zero
  // leak can cross a negative threshold upward); gating off flips the
  // cluster-cycle accounting. Both must stay bit-identical.
  QuantizedLayerSpec l = conv_layer(1, 16, 2, -3, 31);
  l.lif.leak = 2;
  QuantizedNetwork net;
  net.layers.push_back(l);
  const auto in = data::random_stream({1, 16, 16, 8}, 0.05, 19);
  SneConfig hw = SneConfig::paper_design_point(1);
  hw.clock_gating = false;
  const auto ref = run_network(hw, false, net, in);
  const auto fast = run_network(hw, true, net, in);
  expect_equivalent(ref, fast);
}

TEST(FastForwardEquivalence, RandomMemoryStalls) {
  // Randomized DMA contention stalls (seeded): the input streamer's latency
  // countdown is skipped in bulk and must consume the RNG identically.
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(2, 16, 2, 6, 37));
  const auto in = data::random_stream({2, 16, 16, 10}, 0.05, 11);
  hwsim::MemoryTiming timing;
  timing.latency_cycles = 6;
  timing.stall_probability = 0.2;
  timing.stall_cycles = 11;

  NetworkRunStats stats[2];
  int k = 0;
  for (bool fast : {false, true}) {
    SneConfig hw = SneConfig::paper_design_point(2);
    hw.fast_forward = fast;
    SneEngine engine(hw, 1u << 20, timing);
    NetworkRunner runner(engine, /*use_wload_stream=*/false);
    stats[k++] = runner.run(net, in);
  }
  expect_equivalent(stats[0], stats[1]);
}

TEST(FastForwardEquivalence, EngineReuseAcrossRuns) {
  // A reused engine carries membrane state into the next run's configure;
  // the armed-slot masks must stay conservative (configure arms everything).
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(1, 16, 2, 2, 43));
  const auto in_a = data::random_stream({1, 16, 16, 8}, 0.08, 51);
  const auto in_b = data::random_stream({1, 16, 16, 8}, 0.08, 52);

  NetworkRunStats a[2], b[2];
  int k = 0;
  for (bool fast : {false, true}) {
    SneConfig hw = SneConfig::paper_design_point(1);
    hw.fast_forward = fast;
    SneEngine engine(hw, 1u << 20);
    NetworkRunner runner(engine, /*use_wload_stream=*/false);
    a[k] = runner.run(net, in_a);
    b[k] = runner.run(net, in_b);  // same engine, second dataset
    ++k;
  }
  expect_equivalent(a[0], a[1]);
  expect_equivalent(b[0], b[1]);
}

TEST(FastForwardEquivalence, WloadStreamProgramming) {
  // Weight programming through the C-XBAR WLOAD path (per-cycle payload
  // consumption) interleaved with simulation.
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(1, 16, 2, 6, 47));
  const auto in = data::random_stream({1, 16, 16, 8}, 0.06, 61);

  NetworkRunStats stats[2];
  int k = 0;
  for (bool fast : {false, true}) {
    SneConfig hw = SneConfig::paper_design_point(1);
    hw.fast_forward = fast;
    SneEngine engine(hw, 1u << 20);
    NetworkRunner runner(engine, /*use_wload_stream=*/true);
    stats[k++] = runner.run(net, in);
  }
  ASSERT_GT(stats[0].total.weight_load_beats, 0u);
  expect_equivalent(stats[0], stats[1]);
}

// --- batched drain engine ----------------------------------------------------

TEST(DrainEquivalence, DenseSpikingFire) {
  // Zero threshold and non-negative weights: every mapped neuron fires at
  // every scan, the worst case for the collector/DMA chain — exactly the
  // interleaving the batched drain engine compresses.
  QuantizedLayerSpec l = conv_layer(2, 16, 4, 0, 53);
  for (auto& w : l.weights) w = static_cast<std::int8_t>(std::max(1, std::abs(w)));
  QuantizedNetwork net;
  net.layers.push_back(l);
  const auto in = data::random_stream({2, 16, 16, 6}, 0.25, 77);
  SneConfig hw = SneConfig::paper_design_point(2);
  expect_drain_equivalent(hw, net, in);
}

TEST(DrainEquivalence, MultiOutputDmas) {
  // The collector issues one beat per output DMA per cycle; the drain
  // replay must reproduce the per-DMA interleaving for every configured
  // width (paper IV-A.3's bandwidth-scaling knob).
  QuantizedLayerSpec l = conv_layer(2, 16, 4, 0, 59);
  for (auto& w : l.weights) w = static_cast<std::int8_t>(std::max(1, std::abs(w)));
  QuantizedNetwork net;
  net.layers.push_back(l);
  const auto in = data::random_stream({2, 16, 16, 6}, 0.2, 79);
  for (std::uint32_t dmas : {1u, 2u, 4u}) {
    SneConfig hw = SneConfig::paper_design_point(4);
    hw.num_output_dmas = dmas;
    expect_drain_equivalent(hw, net, in);
  }
}

TEST(DrainEquivalence, MultiDmaWideSteadyRotation) {
  // 8 slices of dense output against D ∈ {2, 4} output DMAs: long steady
  // spans where D grants per cycle rotate across the request mask. The
  // D-wide closed form must land exactly where the per-cycle rotation
  // would — cursor position, per-DMA write interleaving, refill timing and
  // every counter, across block boundaries where D does not divide the
  // member count (M = 8 participants is exercised alongside smaller tails
  // as slices finish draining).
  QuantizedLayerSpec l = conv_layer(1, 16, 32, 0, 101);
  for (auto& w : l.weights) w = static_cast<std::int8_t>(std::max(1, std::abs(w)));
  QuantizedNetwork net;
  net.layers.push_back(l);
  const auto in = data::random_stream({1, 16, 16, 8}, 0.2, 103);
  for (std::uint32_t dmas : {2u, 4u}) {
    SneConfig hw = SneConfig::paper_design_point(8);
    hw.num_output_dmas = dmas;
    expect_drain_equivalent(hw, net, in);
  }
}

TEST(DrainEquivalence, ShallowFifosDenseDrain) {
  // Minimal buffering everywhere: stalls and backpressure at every hop of
  // the drain chain, including repeated full slice-output FIFOs.
  QuantizedLayerSpec l = conv_layer(1, 16, 2, 0, 61);
  for (auto& w : l.weights) w = static_cast<std::int8_t>(std::max(1, std::abs(w)));
  QuantizedNetwork net;
  net.layers.push_back(l);
  const auto in = data::random_stream({1, 16, 16, 8}, 0.3, 83);
  SneConfig hw = SneConfig::paper_design_point(1);
  hw.cluster_fifo_depth = 1;
  hw.slice_out_fifo_depth = 1;
  hw.dma_fifo_depth = 2;
  expect_drain_equivalent(hw, net, in);
}

TEST(DrainEquivalence, PipelineBackpressureDuringDrain) {
  // Pipeline operating mode with a spike-dense first stage and shallow
  // inter-slice FIFOs: the downstream slice backpressures the upstream
  // drain through the C-XBAR while both stages emit concurrently.
  QuantizedLayerSpec l1 = conv_layer(1, 16, 2, 0, 67);
  for (auto& w : l1.weights) w = static_cast<std::int8_t>(std::max(1, std::abs(w)));
  auto l2 = conv_layer(2, 16, 2, 1, 71);
  l2.name = "conv2";
  QuantizedNetwork net;
  net.layers.push_back(l1);
  net.layers.push_back(l2);
  const auto in = data::random_stream({1, 16, 16, 6}, 0.2, 87);

  event::EventStream outputs[3];
  hwsim::ActivityCounters counters[3];
  std::uint64_t cycles[3];
  int k = 0;
  for (int mode = 0; mode < 3; ++mode) {
    SneConfig hw = SneConfig::paper_design_point(2);
    hw.fast_forward = mode > 0;
    hw.drain_batching = mode > 1;
    hw.slice_in_fifo_depth = 1;
    hw.slice_out_fifo_depth = 2;
    SneEngine engine(hw, 1u << 20);
    const auto geom = ecnn::build_pipeline(engine, net, in.geometry().timesteps);
    core::RunOptions opts;
    opts.out_geometry = geom;
    const auto r = engine.run(in, opts);
    outputs[k] = r.output;
    counters[k] = r.counters;
    cycles[k] = r.cycles;
    ++k;
  }
  ASSERT_GT(counters[0].output_events, 0u);
  for (int m = 1; m < 3; ++m) {
    EXPECT_EQ(cycles[0], cycles[m]) << "mode " << m;
    EXPECT_TRUE(counters[0] == counters[m]) << "mode " << m
        << " counters diverge:\nref:  " << counters[0] << "\nfast: " << counters[m];
    EXPECT_TRUE(outputs[0] == outputs[m]) << "mode " << m;
  }
}

TEST(DrainEquivalence, PipeRoutedBulkDrainHostsDecodeBoundaries) {
  // Pipeline operating mode at default FIFO depths: the downstream slice
  // decodes a fresh event every few cycles, so the batched drain kernel
  // cannot exit at every decode boundary — it hosts the boundary slice via
  // the full tick() dispatch inside the kernel cycle while the rest of the
  // chain replays on the specialized path. Three-way bit-exact: cycles,
  // every counter field, exact output event order.
  QuantizedLayerSpec l1 = conv_layer(1, 16, 2, 0, 107);
  for (auto& w : l1.weights) w = static_cast<std::int8_t>(std::max(1, std::abs(w)));
  auto l2 = conv_layer(2, 16, 2, 5, 109);
  l2.name = "conv2";
  QuantizedNetwork net;
  net.layers.push_back(l1);
  net.layers.push_back(l2);
  const auto in = data::random_stream({1, 16, 16, 10}, 0.25, 113);

  event::EventStream outputs[3];
  hwsim::ActivityCounters counters[3];
  std::uint64_t cycles[3];
  int k = 0;
  for (int mode = 0; mode < 3; ++mode) {
    SneConfig hw = SneConfig::paper_design_point(2);
    hw.fast_forward = mode > 0;
    hw.drain_batching = mode > 1;
    SneEngine engine(hw, 1u << 20);
    const auto geom = ecnn::build_pipeline(engine, net, in.geometry().timesteps);
    core::RunOptions opts;
    opts.out_geometry = geom;
    const auto r = engine.run(in, opts);
    outputs[k] = r.output;
    counters[k] = r.counters;
    cycles[k] = r.cycles;
    ++k;
  }
  ASSERT_GT(counters[0].output_events, 0u);
  for (int m = 1; m < 3; ++m) {
    EXPECT_EQ(cycles[0], cycles[m]) << "mode " << m;
    EXPECT_TRUE(counters[0] == counters[m]) << "mode " << m
        << " counters diverge:\nref:  " << counters[0] << "\nfast: " << counters[m];
    EXPECT_TRUE(outputs[0] == outputs[m]) << "mode " << m;
  }
}

TEST(DrainEquivalence, FullOutputRegion) {
  // Output region sized down until the dense run overflows it: the drain
  // replay must stop one word short and let the per-cycle path raise the
  // same overflow, and near-full runs must stay bit-identical.
  QuantizedLayerSpec l = conv_layer(1, 16, 2, 0, 73);
  for (auto& w : l.weights) w = static_cast<std::int8_t>(std::max(1, std::abs(w)));
  QuantizedNetwork net;
  net.layers.push_back(l);
  const auto in = data::random_stream({1, 16, 16, 4}, 0.3, 91);

  // 8192-word memory -> 4096-word output region: fits (~2k spikes + markers).
  SneConfig hw = SneConfig::paper_design_point(1);
  expect_drain_equivalent(hw, net, in, 8192);

  // 2048-word memory -> 1024-word region: overflows identically in every
  // engine mode.
  for (int mode = 0; mode < 3; ++mode) {
    SneConfig ov = hw;
    ov.fast_forward = mode > 0;
    ov.drain_batching = mode > 1;
    EXPECT_THROW(run_network_cfg(ov, net, in, 2048), ConfigError)
        << "mode " << mode;
  }
}

// --- BatchRunner ------------------------------------------------------------

TEST(BatchRunnerTest, DeterministicAcrossWorkerCounts) {
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(2, 32, 4, 6, 5));

  std::vector<event::EventStream> inputs;
  for (std::uint64_t s = 0; s < 6; ++s)
    inputs.push_back(data::random_stream({2, 32, 32, 8}, 0.04, 100 + s));

  const SneConfig hw = SneConfig::paper_design_point(2);
  ecnn::BatchOptions base;
  base.memory_words = 1u << 20;

  std::vector<std::vector<NetworkRunStats>> all;
  for (unsigned workers : {1u, 2u, 3u}) {
    ecnn::BatchOptions o = base;
    o.workers = workers;
    ecnn::BatchRunner runner(hw, net, o);
    all.push_back(runner.run(inputs));
  }
  for (std::size_t w = 1; w < all.size(); ++w) {
    ASSERT_EQ(all[0].size(), all[w].size());
    for (std::size_t i = 0; i < all[0].size(); ++i) {
      EXPECT_EQ(all[0][i].cycles, all[w][i].cycles) << "sample " << i;
      EXPECT_TRUE(all[0][i].total == all[w][i].total) << "sample " << i;
      EXPECT_TRUE(all[0][i].final_output == all[w][i].final_output)
          << "sample " << i;
    }
  }
}

TEST(BatchRunnerTest, MatchesSerialNetworkRunner) {
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(1, 16, 2, 5, 71));

  std::vector<event::EventStream> inputs;
  for (std::uint64_t s = 0; s < 4; ++s)
    inputs.push_back(data::random_stream({1, 16, 16, 8}, 0.06, 200 + s));

  const SneConfig hw = SneConfig::paper_design_point(2);
  ecnn::BatchOptions o;
  o.memory_words = 1u << 20;
  o.workers = 2;
  ecnn::BatchRunner batch(hw, net, o);
  const auto batched = batch.run(inputs);

  // Serial reference: one engine reused across samples, as dataset loops
  // have always done.
  SneEngine engine(hw, 1u << 20);
  NetworkRunner runner(engine, /*use_wload_stream=*/false);
  ASSERT_EQ(batched.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto serial = runner.run(net, inputs[i]);
    EXPECT_EQ(serial.cycles, batched[i].cycles) << "sample " << i;
    EXPECT_TRUE(serial.total == batched[i].total) << "sample " << i;
    EXPECT_TRUE(serial.final_output == batched[i].final_output)
        << "sample " << i;
  }
}

TEST(BatchRunnerTest, PropagatesTaskExceptions) {
  QuantizedNetwork net;
  net.layers.push_back(conv_layer(1, 16, 2, 5, 73));
  const SneConfig hw = SneConfig::paper_design_point(1);
  ecnn::BatchOptions o;
  o.memory_words = 1u << 20;
  o.workers = 2;
  ecnn::BatchRunner runner(hw, net, o);
  // An output map wider than the event address space makes Slice::configure
  // throw inside a worker; the exception must surface on the calling thread.
  QuantizedNetwork bad;
  bad.layers.push_back(conv_layer(1, 160, 1, 5, 73));
  ecnn::BatchRunner bad_runner(hw, bad, o);
  std::vector<event::EventStream> inputs;
  inputs.push_back(data::random_stream({1, 160, 160, 2}, 0.02, 3));
  EXPECT_ANY_THROW(bad_runner.run(inputs));
}

}  // namespace
}  // namespace sne
