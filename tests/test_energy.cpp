// Energy/area model calibration tests: the model must reproduce the paper's
// published anchors (Fig. 4, Fig. 5, Table II) within tight tolerances.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/synthetic.h"
#include "energy/area_model.h"
#include "energy/calibration_workload.h"
#include "energy/energy_model.h"

namespace sne::energy {
namespace {

TEST(AreaModelTest, Fig4TableIsExactAtPublishedPoints) {
  AreaModel m;
  const AreaBreakdown a1 = m.breakdown(1);
  EXPECT_DOUBLE_EQ(a1.memory, 91.2);
  EXPECT_DOUBLE_EQ(a1.streamers, 30.0);
  const AreaBreakdown a8 = m.breakdown(8);
  EXPECT_DOUBLE_EQ(a8.memory, 729.8);
  EXPECT_DOUBLE_EQ(a8.clusters, 99.9);
  EXPECT_DOUBLE_EQ(a8.streamers, 30.0);
  EXPECT_DOUBLE_EQ(a8.interconnect, 6.2);
  EXPECT_DOUBLE_EQ(a8.registers, 306.2);
  EXPECT_DOUBLE_EQ(a8.control, 65.0);
  EXPECT_DOUBLE_EQ(a8.fifos, 212.3);
  EXPECT_DOUBLE_EQ(a8.filters, 231.3);
}

TEST(AreaModelTest, DmaAreaIsConstant) {
  // "DMA area remain constant" (paper IV-A.1).
  AreaModel m;
  for (std::uint32_t n : {1u, 2u, 3u, 4u, 6u, 8u})
    EXPECT_DOUBLE_EQ(m.breakdown(n).streamers, 30.0);
}

TEST(AreaModelTest, MemoryDominatesAndScales) {
  // "Most of the area is occupied by latch-based memories holding the
  // neuron state. As the number of SLs increase, the SLs and C-XBAR area
  // scales proportionally."
  AreaModel m;
  for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
    const AreaBreakdown b = m.breakdown(n);
    for (int c = 1; c < AreaBreakdown::kComponents; ++c)
      EXPECT_GT(b.memory, b.component(c)) << "slices=" << n;
  }
  EXPECT_NEAR(m.breakdown(8).memory / m.breakdown(1).memory, 8.0, 0.05);
  EXPECT_GT(m.breakdown(8).interconnect / m.breakdown(1).interconnect, 7.0);
}

TEST(AreaModelTest, InterpolationIsMonotone) {
  AreaModel m;
  double prev = 0.0;
  for (std::uint32_t n = 1; n <= 8; ++n) {
    const double t = m.total_kge(n);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(AreaModelTest, NeuronAreaMatchesTableII) {
  // Table II: 19.9 um2/neuron at the 8-slice design point (8192 neurons).
  AreaModel m;
  core::SneConfig hw = core::SneConfig::paper_design_point(8);
  EXPECT_EQ(hw.total_neurons(), 8192u);
  EXPECT_NEAR(m.neuron_area_um2(hw), 19.9, 0.2);
}

/// Dense benchmark used by the paper's power analysis (see
/// energy/calibration_workload.h).
hwsim::ActivityCounters dense_workload(std::uint32_t slices,
                                       std::uint32_t timesteps = 100) {
  return run_calibration_workload(slices,
                                  static_cast<std::uint16_t>(timesteps))
      .counters;
}

TEST(CalibrationWorkload, OutputActivityNearFivePercent) {
  // "the layer is generating 5% output event activity" (IV-A.2).
  const CalibrationRun run = run_calibration_workload(2, 60);
  EXPECT_GT(run.output_activity, 0.025);
  EXPECT_LT(run.output_activity, 0.08);
}

TEST(EnergyModelTest, DensePowerHitsPaperAnchor) {
  // Table II: 11.29 mW at 8 slices, 400 MHz, 0.8 V (all units updating).
  EnergyModel m(core::SneConfig::paper_design_point(8));
  EXPECT_NEAR(m.dense_power_mw(), 11.29, 11.29 * 0.01);
}

TEST(EnergyModelTest, DenseEnergyPerSopHitsPaperAnchor) {
  // Abstract/Table II: 0.221 pJ/SOP at 8 slices.
  EnergyModel m(core::SneConfig::paper_design_point(8));
  EXPECT_NEAR(m.dense_pj_per_sop(), 0.221, 0.221 * 0.01);
}

TEST(EnergyModelTest, SimulatedDenseWorkloadApproachesAnalyticAnchor) {
  // The cycle-accurate dense benchmark must land close to the analytic
  // worst-case estimate — above it (FIRE scans and drains add non-update
  // cycles) but within ~15%.
  const auto c = dense_workload(8, 40);
  EnergyModel m(core::SneConfig::paper_design_point(8));
  const double sim = m.pj_per_sop(c);
  const double analytic = m.dense_pj_per_sop();
  EXPECT_GT(sim, analytic * 0.99);
  EXPECT_LT(sim, analytic * 1.15);
}

TEST(EnergyModelTest, PeakPerformanceMatchesPaper) {
  // 51.2 GSOP/s = 8 slices x 16 clusters x 400 MHz.
  EnergyModel m(core::SneConfig::paper_design_point(8));
  EXPECT_DOUBLE_EQ(m.peak_gsops(), 51.2);
  EnergyModel m1(core::SneConfig::paper_design_point(1));
  EXPECT_DOUBLE_EQ(m1.peak_gsops(), 6.4);
}

TEST(EnergyModelTest, EfficiencyMatchesTableII) {
  // 4.54 TSOP/s/W.
  EnergyModel m(core::SneConfig::paper_design_point(8));
  EXPECT_NEAR(m.dense_tsops_per_watt(), 4.54, 4.54 * 0.01);
}

TEST(EnergyModelTest, EnergyPerSopDecreasesWithSlices) {
  // Fig. 5b: fixed costs amortize; pJ/SOP falls toward the 0.221 asymptote.
  double prev = 1e9;
  for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
    EnergyModel m(core::SneConfig::paper_design_point(n));
    const double pj = m.dense_pj_per_sop();
    EXPECT_LT(pj, prev);
    EXPECT_GT(pj, 0.219);
    EXPECT_LT(pj, 0.245);
    prev = pj;
  }
}

TEST(EnergyModelTest, VoltageExtrapolationMatchesTableIIFootnote) {
  // "extrapolating our results to the 0.9V operating condition, SNE would
  // still achieve 4.03 TOP/s/W and consume 0.248 pJ/SOP" — the paper's
  // numbers correspond to linear energy-voltage scaling (default).
  EnergyModel m(core::SneConfig::paper_design_point(8));
  EnergyModel hv = m.at_voltage(0.9);
  EXPECT_NEAR(hv.dense_pj_per_sop(), 0.248, 0.248 * 0.01);
  EXPECT_NEAR(hv.dense_tsops_per_watt(), 4.03, 4.03 * 0.01);
}

TEST(EnergyModelTest, QuadraticScalingAvailableForPhysics) {
  TechParams tech;
  tech.voltage_scale_exponent = 2.0;  // CV^2
  EnergyModel m(core::SneConfig::paper_design_point(8), tech);
  const double ratio =
      m.at_voltage(0.9).dense_pj_per_sop() / m.dense_pj_per_sop();
  EXPECT_NEAR(ratio, 1.2656, 0.02);  // (0.9/0.8)^2, leakage second-order
}

TEST(EnergyModelTest, LeakageIsSmallFraction) {
  // Fig. 5a: "Dynamic power significantly dominates".
  const auto c = dense_workload(8, 40);
  EnergyModel m(core::SneConfig::paper_design_point(8));
  const EnergyReport r = m.evaluate(c);
  EXPECT_LT(r.leakage_pj, 0.05 * r.dynamic_pj);
}

TEST(EnergyModelTest, EnergyProportionalToEvents) {
  // The headline property: energy scales ~linearly with input events at
  // fixed geometry.
  core::SneConfig hw = core::SneConfig::paper_design_point(2);
  EnergyModel m(hw);
  std::vector<double> uj;
  for (double act : {0.01, 0.02, 0.04}) {
    core::SneEngine engine(hw);
    core::SliceConfig cfg;
    cfg.kind = core::LayerKind::kConv;
    cfg.in_channels = 2;
    cfg.in_width = 32;
    cfg.in_height = 32;
    cfg.out_channels = 1;
    cfg.out_width = 32;
    cfg.out_height = 32;
    cfg.kernel_w = 3;
    cfg.kernel_h = 3;
    cfg.stride = 1;
    cfg.pad = 1;
    cfg.oc_per_slice = 1;
    cfg.lif.v_th = 10;
    cfg.clusters = core::make_tiled_mapping(hw, 32, 32, 0, 1);
    engine.configure_slice(0, cfg);
    engine.configure_slice(1, cfg);
    engine.set_routes(core::XbarRoutes::time_multiplexed(2));
    const auto in = data::random_stream({2, 32, 32, 50}, act, 31337);
    const auto r = engine.run(in);
    uj.push_back(m.evaluate(r.counters).total_uj());
  }
  // Doubling activity should roughly double energy (within 25%).
  EXPECT_NEAR(uj[1] / uj[0], 2.0, 0.5);
  EXPECT_NEAR(uj[2] / uj[1], 2.0, 0.5);
}

}  // namespace
}  // namespace sne::energy
