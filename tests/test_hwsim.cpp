// Hardware-simulation substrate tests: FIFOs, arbiter, memory timing.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "hwsim/arbiter.h"
#include "hwsim/counters.h"
#include "hwsim/fifo.h"
#include "hwsim/memory.h"

namespace sne::hwsim {
namespace {

TEST(FifoTest, BasicOrderAndCapacity) {
  Fifo<int> f(3);
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.try_push(1));
  EXPECT_TRUE(f.try_push(2));
  EXPECT_TRUE(f.try_push(3));
  EXPECT_TRUE(f.full());
  EXPECT_FALSE(f.try_push(4));  // backpressure, nothing dropped
  EXPECT_EQ(f.pop(), 1);
  EXPECT_EQ(f.pop(), 2);
  EXPECT_TRUE(f.try_push(4));
  EXPECT_EQ(f.pop(), 3);
  EXPECT_EQ(f.pop(), 4);
  EXPECT_TRUE(f.empty());
}

TEST(FifoTest, PopOnEmptyViolatesContract) {
  Fifo<int> f(2);
  EXPECT_THROW(f.pop(), ContractViolation);
}

TEST(FifoTest, HighWaterAndCounts) {
  Fifo<int> f(4);
  f.try_push(1);
  f.try_push(2);
  f.try_push(3);
  f.pop();
  f.try_push(4);
  EXPECT_EQ(f.high_water(), 3u);
  EXPECT_EQ(f.total_pushes(), 4u);
  EXPECT_EQ(f.total_pops(), 1u);
}

TEST(ArbiterTest, RoundRobinIsFair) {
  RoundRobinArbiter arb(4);
  std::vector<int> grants;
  for (int i = 0; i < 8; ++i)
    grants.push_back(arb.grant([](std::size_t) { return true; }));
  EXPECT_EQ(grants, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(ArbiterTest, SkipsNonRequesting) {
  RoundRobinArbiter arb(4);
  const auto only = [](std::size_t want) {
    return [want](std::size_t i) { return i == want; };
  };
  EXPECT_EQ(arb.grant(only(2)), 2);
  EXPECT_EQ(arb.grant(only(1)), 1);
  EXPECT_EQ(arb.grant([](std::size_t) { return false; }), -1);
}

TEST(ArbiterTest, NoStarvationUnderLoad) {
  RoundRobinArbiter arb(3);
  std::vector<int> count(3, 0);
  for (int i = 0; i < 300; ++i) {
    const int g = arb.grant([](std::size_t) { return true; });
    ASSERT_GE(g, 0);
    count[static_cast<std::size_t>(g)]++;
  }
  for (int c : count) EXPECT_EQ(c, 100);
}

TEST(MemoryTest, ReadWriteAndBulk) {
  MemoryModel mem(1024);
  mem.write_word(10, 0xABCD);
  EXPECT_EQ(mem.read_word(10), 0xABCDu);
  mem.load(100, {1, 2, 3});
  EXPECT_EQ(mem.dump(100, 3), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_THROW(mem.read_word(2000), ContractViolation);
}

TEST(MemoryTest, BurstTiming) {
  MemoryTiming t;
  t.latency_cycles = 6;
  MemoryModel mem(64, t);
  EXPECT_EQ(mem.next_word_delay(true), 6u);   // first word pays latency
  EXPECT_EQ(mem.next_word_delay(false), 1u);  // streaming afterwards
}

TEST(MemoryTest, ContentionStallsAreSeededDeterministic) {
  MemoryTiming t;
  t.latency_cycles = 2;
  t.stall_probability = 0.5;
  t.stall_cycles = 8;
  MemoryModel a(64, t, /*seed=*/42), b(64, t, /*seed=*/42);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(a.next_word_delay(false), b.next_word_delay(false));
}

TEST(CountersTest, Accumulate) {
  ActivityCounters a, b;
  a.cycles = 10;
  a.neuron_updates = 5;
  b.cycles = 3;
  b.neuron_updates = 7;
  b.xbar_beats = 2;
  a += b;
  EXPECT_EQ(a.cycles, 13u);
  EXPECT_EQ(a.neuron_updates, 12u);
  EXPECT_EQ(a.xbar_beats, 2u);
}

}  // namespace
}  // namespace sne::hwsim
