// Hardware-simulation substrate tests: FIFOs, arbiter, memory timing.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "hwsim/arbiter.h"
#include "hwsim/counters.h"
#include "hwsim/fifo.h"
#include "hwsim/memory.h"

namespace sne::hwsim {
namespace {

TEST(FifoTest, BasicOrderAndCapacity) {
  Fifo<int> f(3);
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.try_push(1));
  EXPECT_TRUE(f.try_push(2));
  EXPECT_TRUE(f.try_push(3));
  EXPECT_TRUE(f.full());
  EXPECT_FALSE(f.try_push(4));  // backpressure, nothing dropped
  EXPECT_EQ(f.pop(), 1);
  EXPECT_EQ(f.pop(), 2);
  EXPECT_TRUE(f.try_push(4));
  EXPECT_EQ(f.pop(), 3);
  EXPECT_EQ(f.pop(), 4);
  EXPECT_TRUE(f.empty());
}

TEST(FifoTest, PopOnEmptyViolatesContract) {
  Fifo<int> f(2);
  EXPECT_THROW(f.pop(), ContractViolation);
}

TEST(FifoTest, HighWaterAndCounts) {
  Fifo<int> f(4);
  f.try_push(1);
  f.try_push(2);
  f.try_push(3);
  f.pop();
  f.try_push(4);
  EXPECT_EQ(f.high_water(), 3u);
  EXPECT_EQ(f.total_pushes(), 4u);
  EXPECT_EQ(f.total_pops(), 1u);
}

TEST(FifoTest, BulkAccessMatchesScalarOps) {
  // at()/pop_n/push_n are the drain replay's contiguous-span primitives;
  // their accounting must match the equivalent scalar op sequences.
  Fifo<int> f(4);
  f.try_push(1);
  f.try_push(2);
  f.try_push(3);
  f.pop();  // wrap the ring: head != 0
  f.try_push(4);
  f.try_push(5);
  EXPECT_EQ(f.at(0), 2);  // at(0) == front()
  EXPECT_EQ(f.at(1), 3);
  EXPECT_EQ(f.at(3), 5);
  f.pop_n(3);
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f.front(), 5);
  EXPECT_EQ(f.total_pops(), 4u);  // 1 scalar + 3 bulk
  const int more[] = {6, 7, 8};
  f.push_n(more, 3);
  EXPECT_TRUE(f.full());
  EXPECT_EQ(f.total_pushes(), 8u);
  EXPECT_EQ(f.high_water(), 4u);
  for (int want : {5, 6, 7, 8}) EXPECT_EQ(f.pop(), want);
}

TEST(FifoTest, ReconcileBulkReplaysSpanStatistics) {
  Fifo<int> f(4);
  f.try_push(1);
  f.try_push(2);
  // A replayed span: 5 pushes, 4 pops, peak occupancy 4, survivors {9, 10}.
  const int survivors[] = {9, 10};
  f.reconcile_bulk(/*pushes=*/5, /*pops=*/4, /*peak=*/4, survivors, 2);
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.at(0), 9);
  EXPECT_EQ(f.at(1), 10);
  EXPECT_EQ(f.total_pushes(), 7u);
  EXPECT_EQ(f.total_pops(), 4u);
  EXPECT_EQ(f.high_water(), 4u);
}

TEST(ArbiterTest, MaskedGrantMatchesPredicateGrant) {
  // grant_masked must issue the identical grant sequence to grant() fed the
  // same requesters, for every cursor position.
  RoundRobinArbiter a(5);
  RoundRobinArbiter b(5);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto mask =
        static_cast<std::uint64_t>(rng.uniform_int(0, 31));
    const int ga = a.grant([mask](std::size_t k) { return mask >> k & 1; });
    const int gb = b.grant_masked(mask);
    ASSERT_EQ(ga, gb) << "step " << i << " mask " << mask;
    ASSERT_EQ(a.cursor(), b.cursor());
  }
}

TEST(ArbiterTest, RoundRobinIsFair) {
  RoundRobinArbiter arb(4);
  std::vector<int> grants;
  for (int i = 0; i < 8; ++i)
    grants.push_back(arb.grant([](std::size_t) { return true; }));
  EXPECT_EQ(grants, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(ArbiterTest, SkipsNonRequesting) {
  RoundRobinArbiter arb(4);
  const auto only = [](std::size_t want) {
    return [want](std::size_t i) { return i == want; };
  };
  EXPECT_EQ(arb.grant(only(2)), 2);
  EXPECT_EQ(arb.grant(only(1)), 1);
  EXPECT_EQ(arb.grant([](std::size_t) { return false; }), -1);
}

TEST(ArbiterTest, NoStarvationUnderLoad) {
  RoundRobinArbiter arb(3);
  std::vector<int> count(3, 0);
  for (int i = 0; i < 300; ++i) {
    const int g = arb.grant([](std::size_t) { return true; });
    ASSERT_GE(g, 0);
    count[static_cast<std::size_t>(g)]++;
  }
  for (int c : count) EXPECT_EQ(c, 100);
}

TEST(MemoryTest, ReadWriteAndBulk) {
  MemoryModel mem(1024);
  mem.write_word(10, 0xABCD);
  EXPECT_EQ(mem.read_word(10), 0xABCDu);
  mem.load(100, {1, 2, 3});
  EXPECT_EQ(mem.dump(100, 3), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_THROW(mem.read_word(2000), ContractViolation);
}

TEST(MemoryTest, BurstTiming) {
  MemoryTiming t;
  t.latency_cycles = 6;
  MemoryModel mem(64, t);
  EXPECT_EQ(mem.next_word_delay(true), 6u);   // first word pays latency
  EXPECT_EQ(mem.next_word_delay(false), 1u);  // streaming afterwards
}

TEST(MemoryTest, ContentionStallsAreSeededDeterministic) {
  MemoryTiming t;
  t.latency_cycles = 2;
  t.stall_probability = 0.5;
  t.stall_cycles = 8;
  MemoryModel a(64, t, /*seed=*/42), b(64, t, /*seed=*/42);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(a.next_word_delay(false), b.next_word_delay(false));
}

TEST(CountersTest, Accumulate) {
  ActivityCounters a, b;
  a.cycles = 10;
  a.neuron_updates = 5;
  b.cycles = 3;
  b.neuron_updates = 7;
  b.xbar_beats = 2;
  a += b;
  EXPECT_EQ(a.cycles, 13u);
  EXPECT_EQ(a.neuron_updates, 12u);
  EXPECT_EQ(a.xbar_beats, 2u);
}

}  // namespace
}  // namespace sne::hwsim
