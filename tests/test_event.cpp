// Event format and stream container tests (paper Fig. 1 + section III-C).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "common/rng.h"
#include "event/event.h"
#include "event/event_io.h"
#include "event/event_stream.h"

namespace sne::event {
namespace {

TEST(EventFormat, FieldLayoutIs32Bits) {
  EXPECT_EQ(kOpShift + kOpBits, 32);
  EXPECT_EQ(kMaxX, 127u);
  EXPECT_EQ(kMaxY, 127u);
  EXPECT_EQ(kMaxCh, 255u);
  EXPECT_EQ(kMaxTime, 255u);
}

TEST(EventFormat, PackUnpackRoundTrip) {
  const Event e = Event::update(200, 255, 127, 127);
  EXPECT_EQ(unpack(pack(e)), e);
  const Event r = Event::reset(0);
  EXPECT_EQ(unpack(pack(r)), r);
  const Event f = Event::fire(99);
  EXPECT_EQ(unpack(pack(f)), f);
}

TEST(EventFormat, RandomizedRoundTrip) {
  Rng rng(2024);
  for (int i = 0; i < 2000; ++i) {
    Event e;
    e.op = static_cast<Op>(rng.uniform_int(0, 3));
    e.t = static_cast<std::uint16_t>(rng.uniform_int(0, kMaxTime));
    e.ch = static_cast<std::uint16_t>(rng.uniform_int(0, kMaxCh));
    e.x = static_cast<std::uint8_t>(rng.uniform_int(0, kMaxX));
    e.y = static_cast<std::uint8_t>(rng.uniform_int(0, kMaxY));
    EXPECT_EQ(unpack(pack(e)), e);
  }
}

TEST(EventFormat, EveryBeatDecodes) {
  // Total decoder: no 32-bit pattern traps.
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Beat b = static_cast<Beat>(rng.next());
    const Event e = unpack(b);
    EXPECT_LE(e.t, kMaxTime);
    EXPECT_LE(static_cast<std::uint32_t>(e.x), kMaxX);
  }
}

TEST(EventFormat, PackRejectsOutOfRange) {
  Event e = Event::update(0, 0, 0, 0);
  e.t = 300;
  EXPECT_THROW(pack(e), ContractViolation);
}

TEST(EventFormat, WeightBeatRoundTrip) {
  const std::int8_t w[8] = {-8, -1, 0, 1, 7, -5, 3, -2};
  const Beat b = pack_weights(w);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(unpack_weight(b, i), w[i]);
}

TEST(EventFormat, WeightHeaderRoundTrip) {
  WeightHeader h{37, 5, 9};
  const WeightHeader r = unpack_weight_header(pack(h));
  EXPECT_EQ(r.set_index, h.set_index);
  EXPECT_EQ(r.group_offset, h.group_offset);
  EXPECT_EQ(r.payload_beats, h.payload_beats);
}

TEST(EventStreamTest, ActivityMetric) {
  EventStream s(StreamGeometry{2, 4, 4, 10});
  // volume = 2*4*4*10 = 320
  for (int i = 0; i < 32; ++i)
    s.push_update(static_cast<std::uint16_t>(i % 10), 0,
                  static_cast<std::uint8_t>(i % 4), 1);
  EXPECT_DOUBLE_EQ(s.activity(), 0.1);
  EXPECT_EQ(s.update_count(), 32u);
}

TEST(EventStreamTest, NormalizeOrdersTimeMajorWithOpRank) {
  EventStream s(StreamGeometry{1, 4, 4, 4});
  s.push(Event::fire(1));
  s.push(Event::update(1, 0, 2, 2));
  s.push(Event::update(0, 0, 1, 1));
  s.push(Event::reset(0));
  s.normalize();
  EXPECT_TRUE(s.is_normalized());
  EXPECT_EQ(s.events()[0].op, Op::kReset);
  EXPECT_EQ(s.events()[1].op, Op::kUpdate);
  EXPECT_EQ(s.events()[1].t, 0);
  EXPECT_EQ(s.events()[2].op, Op::kUpdate);
  EXPECT_EQ(s.events()[3].op, Op::kFire);
}

TEST(EventStreamTest, ControlEventsActiveStepsOnly) {
  EventStream s(StreamGeometry{1, 4, 4, 10});
  s.push_update(2, 0, 1, 1);
  s.push_update(7, 0, 2, 2);
  const EventStream c = s.with_control_events(FirePolicy::kActiveStepsOnly);
  std::size_t fires = 0, resets = 0;
  for (const Event& e : c.events()) {
    if (e.op == Op::kFire) ++fires;
    if (e.op == Op::kReset) ++resets;
  }
  EXPECT_EQ(fires, 2u);  // only steps 2 and 7
  EXPECT_EQ(resets, 1u);
}

TEST(EventStreamTest, ControlEventsEveryStep) {
  EventStream s(StreamGeometry{1, 4, 4, 10});
  s.push_update(2, 0, 1, 1);
  const EventStream c = s.with_control_events(FirePolicy::kEveryStep);
  std::size_t fires = 0;
  for (const Event& e : c.events())
    if (e.op == Op::kFire) ++fires;
  EXPECT_EQ(fires, 10u);
}

TEST(EventStreamTest, BeatsRoundTrip) {
  EventStream s(StreamGeometry{2, 8, 8, 4});
  s.push_update(0, 1, 3, 4);
  s.push_update(3, 0, 7, 7);
  const auto beats = s.to_beats();
  const EventStream r = EventStream::from_beats(beats, s.geometry());
  EXPECT_EQ(r, s);
}

TEST(EventStreamTest, PushEnforcesGeometry) {
  EventStream s(StreamGeometry{1, 4, 4, 4});
  EXPECT_THROW(s.push_update(0, 1, 0, 0), ContractViolation);  // ch out of range
  EXPECT_THROW(s.push_update(0, 0, 4, 0), ContractViolation);  // x out of range
  EXPECT_THROW(s.push_update(4, 0, 0, 0), ContractViolation);  // t out of range
}

TEST(EventStreamTest, MergePreservesEventsAndNormalizes) {
  EventStream a(StreamGeometry{1, 4, 4, 4});
  a.push_update(1, 0, 1, 1);
  EventStream b(StreamGeometry{1, 4, 4, 4});
  b.push_update(0, 0, 2, 2);
  const EventStream m = EventStream::merge(a, b);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.is_normalized());
  EXPECT_EQ(m.events()[0].t, 0);
}

TEST(EventIo, FileRoundTrip) {
  EventStream s(StreamGeometry{2, 16, 16, 8});
  Rng rng(5);
  for (int i = 0; i < 100; ++i)
    s.push_update(static_cast<std::uint16_t>(rng.uniform_int(0, 7)),
                  static_cast<std::uint16_t>(rng.uniform_int(0, 1)),
                  static_cast<std::uint8_t>(rng.uniform_int(0, 15)),
                  static_cast<std::uint8_t>(rng.uniform_int(0, 15)));
  s.normalize();
  const std::string path = "/tmp/sne_stream_test.bin";
  save_stream(s, path);
  const EventStream r = load_stream(path);
  EXPECT_EQ(r, s);
  EXPECT_EQ(r.geometry().channels, 2);
  EXPECT_EQ(r.geometry().timesteps, 8);
  std::remove(path.c_str());
}

TEST(EventIo, RejectsBadMagic) {
  const std::string path = "/tmp/sne_bad_magic.bin";
  {
    std::ofstream f(path, std::ios::binary);
    const std::uint32_t junk = 0xDEADBEEF;
    f.write(reinterpret_cast<const char*>(&junk), 4);
  }
  EXPECT_THROW(load_stream(path), ConfigError);
  std::remove(path.c_str());
}

TEST(EventIo, RejectsTruncatedAndOverlongFiles) {
  EventStream s(StreamGeometry{1, 8, 8, 4});
  Rng rng(9);
  for (int i = 0; i < 20; ++i)
    s.push_update(static_cast<std::uint16_t>(rng.uniform_int(0, 3)), 0,
                  static_cast<std::uint8_t>(rng.uniform_int(0, 7)),
                  static_cast<std::uint8_t>(rng.uniform_int(0, 7)));
  s.normalize();
  const std::string path = "/tmp/sne_stream_corrupt.bin";
  save_stream(s, path);
  std::string good;
  {
    std::ifstream f(path, std::ios::binary);
    good.assign(std::istreambuf_iterator<char>(f),
                std::istreambuf_iterator<char>());
  }
  ASSERT_EQ(good.size(), (6 + s.size()) * 4);

  const auto rewrite = [&path](const std::string& bytes) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  // Any truncation — mid-header, at the count word, mid-beats, or one word
  // short — must throw instead of yielding a partial stream.
  for (const std::size_t cut :
       {std::size_t{2}, std::size_t{12}, std::size_t{23}, good.size() / 2,
        good.size() - 4, good.size() - 1}) {
    rewrite(good.substr(0, cut));
    EXPECT_THROW(load_stream(path), ConfigError) << "cut at " << cut;
  }
  // Trailing bytes (e.g. two concatenated recordings) are rejected too.
  rewrite(good + std::string(4, '\7'));
  EXPECT_THROW(load_stream(path), ConfigError);
  rewrite(good + std::string(1, '\0'));
  EXPECT_THROW(load_stream(path), ConfigError);
  // The pristine bytes still round-trip.
  rewrite(good);
  EXPECT_EQ(load_stream(path), s);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sne::event
