// Golden-executor semantics tests: the software reference itself must obey
// the paper's execution model (Listing 1) precisely — these tests pin the
// reference the hardware is verified against.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ecnn/golden.h"
#include "test_util.h"

namespace sne::ecnn {
namespace {

QuantizedLayerSpec identity_conv(std::uint16_t size) {
  QuantizedLayerSpec l;
  l.type = LayerSpec::Type::kConv;
  l.name = "identity";
  l.in_ch = 1;
  l.in_w = size;
  l.in_h = size;
  l.out_ch = 1;
  l.kernel = 1;
  l.stride = 1;
  l.pad = 0;
  l.weights = {7};
  l.lif.v_th = 5;
  l.lif.leak = 0;
  return l;
}

TEST(GoldenSemantics, IdentityKernelEchoesEvents) {
  const auto layer = identity_conv(8);
  event::EventStream in(event::StreamGeometry{1, 8, 8, 4});
  in.push_update(0, 0, 2, 3);
  in.push_update(2, 0, 7, 7);
  const auto trace = GoldenExecutor::run_layer(layer, in);
  const auto spikes = testutil::canonical_spikes(trace.output);
  ASSERT_EQ(spikes.size(), 2u);
  EXPECT_EQ(spikes[0], event::Event::update(0, 0, 2, 3));
  EXPECT_EQ(spikes[1], event::Event::update(2, 0, 7, 7));
}

TEST(GoldenSemantics, MembraneAccumulatesAcrossTimesteps) {
  // Sub-threshold inputs at successive steps accumulate ("input synaptic
  // contributions are accumulated in the state variable across the entire
  // inference process", paper III-C).
  auto layer = identity_conv(4);
  layer.weights = {3};
  layer.lif.v_th = 5;  // one event (3) is not enough; two are
  event::EventStream in(event::StreamGeometry{1, 4, 4, 6});
  in.push_update(0, 0, 1, 1);
  in.push_update(1, 0, 1, 1);
  const auto trace = GoldenExecutor::run_layer(layer, in);
  const auto spikes = testutil::canonical_spikes(trace.output);
  ASSERT_EQ(spikes.size(), 1u);
  EXPECT_EQ(spikes[0].t, 1);  // fires at the second step
}

TEST(GoldenSemantics, LeakErasesOldEvidence) {
  auto layer = identity_conv(4);
  layer.weights = {3};
  layer.lif.v_th = 5;
  layer.lif.leak = 2;
  event::EventStream in(event::StreamGeometry{1, 4, 4, 12});
  in.push_update(0, 0, 1, 1);   // V=3
  in.push_update(10, 0, 1, 1);  // leak over 10 steps wiped it; V=3 again
  const auto trace = GoldenExecutor::run_layer(layer, in);
  EXPECT_EQ(trace.output_events, 0u);
}

TEST(GoldenSemantics, PoolIsPerChannelOr) {
  QuantizedLayerSpec pool;
  pool.type = LayerSpec::Type::kPool;
  pool.name = "p";
  pool.in_ch = 2;
  pool.in_w = 4;
  pool.in_h = 4;
  pool.out_ch = 2;
  pool.kernel = 2;
  pool.stride = 2;
  pool.lif.v_th = 0;
  event::EventStream in(event::StreamGeometry{2, 4, 4, 2});
  // Two spikes in the same window, same channel, same step -> ONE output.
  in.push_update(0, 1, 0, 0);
  in.push_update(0, 1, 1, 1);
  // A spike on the other channel -> its own output, same window position.
  in.push_update(0, 0, 2, 2);
  const auto trace = GoldenExecutor::run_layer(pool, in);
  const auto spikes = testutil::canonical_spikes(trace.output);
  ASSERT_EQ(spikes.size(), 2u);
  EXPECT_EQ(spikes[0], event::Event::update(0, 0, 1, 1));
  EXPECT_EQ(spikes[1], event::Event::update(0, 1, 0, 0));
  // Depthwise: channel-0 spike did not touch channel-1 neurons.
  EXPECT_EQ(trace.updates, 3u);
}

TEST(GoldenSemantics, FcAddressingRoundTrips) {
  // An FC layer's shaped output must decode back to the flat neuron id via
  // fc_flat_index of the downstream consumer.
  QuantizedLayerSpec fc;
  fc.type = LayerSpec::Type::kFc;
  fc.name = "fc";
  fc.in_ch = 1;
  fc.in_w = 2;
  fc.in_h = 2;
  fc.out_ch = 300;  // shapes to (150, 2, 1)
  fc.weights.assign(300 * 4, 0);
  // Only neuron 259 listens to input position 1.
  fc.weights[259 * 4 + 1] = 7;
  fc.lif.v_th = 3;
  event::EventStream in(event::StreamGeometry{1, 2, 2, 2});
  in.push_update(0, 0, 1, 0);  // flat position 1
  const auto trace = GoldenExecutor::run_layer(fc, in);
  const auto spikes = testutil::canonical_spikes(trace.output);
  ASSERT_EQ(spikes.size(), 1u);
  // Shape (150, 2, 1): id 259 -> ch 129, x 1, y 0.
  EXPECT_EQ(spikes[0].ch, 129);
  EXPECT_EQ(spikes[0].x, 1);
  const auto counts = GoldenExecutor::class_spike_counts(trace.output, 300);
  EXPECT_EQ(counts[259], 1u);
}

TEST(GoldenSemantics, SaturationIsOrderSensitiveButDeterministic) {
  // Saturating adds do not commute; the executor must process events in
  // stream order so repeated runs are bit-identical.
  auto layer = identity_conv(4);
  layer.lif.v_th = 127;
  event::EventStream in(event::StreamGeometry{1, 4, 4, 2});
  for (int i = 0; i < 40; ++i) in.push_update(0, 0, 1, 1);  // drive to +127
  const auto a = GoldenExecutor::run_layer(layer, in);
  const auto b = GoldenExecutor::run_layer(layer, in);
  EXPECT_EQ(testutil::canonical_spikes(a.output),
            testutil::canonical_spikes(b.output));
}

TEST(GoldenSemantics, TraceStatisticsAreConsistent) {
  Rng rng(10);
  QuantizedLayerSpec l;
  l.type = LayerSpec::Type::kConv;
  l.name = "stats";
  l.in_ch = 2;
  l.in_w = 12;
  l.in_h = 12;
  l.out_ch = 3;
  l.kernel = 3;
  l.stride = 1;
  l.pad = 1;
  l.weights.resize(3 * 2 * 9);
  for (auto& w : l.weights) w = static_cast<std::int8_t>(rng.uniform_int(-3, 7));
  l.lif.v_th = 6;
  const auto in = data::random_stream({2, 12, 12, 10}, 0.05, 5);
  const auto trace = GoldenExecutor::run_layer(l, in);
  EXPECT_EQ(trace.input_events, in.update_count());
  EXPECT_DOUBLE_EQ(trace.input_activity, in.activity());
  EXPECT_EQ(trace.output_events, trace.output.update_count());
  // Each interior event updates at most out_ch * 3x3 neurons.
  EXPECT_LE(trace.updates, trace.input_events * 3ull * 9ull);
  EXPECT_GT(trace.updates, 0u);
}

TEST(GoldenSemantics, OutOfGeometryEventsAreFiltered) {
  auto layer = identity_conv(4);
  event::EventStream in(event::StreamGeometry{4, 16, 16, 2});
  in.push_update(0, 3, 9, 9);  // outside the layer's 1x4x4 address space
  const auto trace = GoldenExecutor::run_layer(layer, in);
  EXPECT_EQ(trace.output_events, 0u);
  EXPECT_EQ(trace.updates, 0u);
}

}  // namespace
}  // namespace sne::ecnn
