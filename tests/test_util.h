// Shared helpers for the test suite.
#pragma once

#include <algorithm>
#include <vector>

#include "event/event.h"
#include "event/event_stream.h"

namespace sne::testutil {

/// Spikes (UPDATE events) of a stream in canonical (t, ch, y, x) order —
/// hardware and golden executors emit in different orders, but the spike
/// *sets* must be identical.
inline std::vector<event::Event> canonical_spikes(const event::EventStream& s) {
  std::vector<event::Event> out;
  for (const event::Event& e : s.events())
    if (e.op == event::Op::kUpdate) out.push_back(e);
  std::sort(out.begin(), out.end(), [](const event::Event& a, const event::Event& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.ch != b.ch) return a.ch < b.ch;
    if (a.y != b.y) return a.y < b.y;
    return a.x < b.x;
  });
  return out;
}

}  // namespace sne::testutil
