// Reproduces paper Fig. 4: "SNE area breakdown for a different number of
// Slices. Values on the plot report the absolute area in kGE."
//
// The area model is calibrated on the decoded figure data (see
// energy/area_model.h), so the published design points {1,2,4,8} reproduce
// exactly; this bench renders the stacked-bar figure as a table plus ASCII
// bars, checks the paper's two qualitative claims (DMA area constant, memory
// dominates and scales), and derives Table II's 19.9 um2/neuron.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/config.h"
#include "energy/area_model.h"

int main() {
  using namespace sne;
  bench::print_header("Fig. 4", "SNE area breakdown vs number of slices",
                      "Component areas in kGE (16 clusters/slice, 64 TDM "
                      "neurons/cluster, GF22FDX 8T, ND2X1-normalized)");

  energy::AreaModel model;

  AsciiTable table({"Slices", "Memory", "Clusters", "Streamers", "Interconn.",
                    "Registers", "Control", "Fifos", "Filters", "Total kGE",
                    "Total mm^2"});
  for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
    const energy::AreaBreakdown b = model.breakdown(n);
    table.add_row({std::to_string(n), AsciiTable::num(b.memory, 1),
                   AsciiTable::num(b.clusters, 1),
                   AsciiTable::num(b.streamers, 1),
                   AsciiTable::num(b.interconnect, 1),
                   AsciiTable::num(b.registers, 1),
                   AsciiTable::num(b.control, 1), AsciiTable::num(b.fifos, 1),
                   AsciiTable::num(b.filters, 1),
                   AsciiTable::num(b.total(), 1),
                   AsciiTable::num(model.total_um2(n) * 1e-6, 3)});
  }
  table.print(std::cout);

  std::cout << "\nNormalized stacked area (Fig. 4 rendering):\n";
  const double full = model.total_kge(8);
  for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
    std::cout << "  " << n << " slice" << (n > 1 ? "s" : " ") << " |"
              << ascii_bar(model.total_kge(n), full, 50) << "| "
              << AsciiTable::num(model.total_kge(n) / full, 2) << "\n";
  }

  std::cout << "\nChecks against the paper's prose:\n";
  const bool dma_const = model.breakdown(1).streamers == model.breakdown(8).streamers;
  std::cout << "  - 'DMA area remain constant': "
            << (dma_const ? "PASS" : "FAIL") << " (30.0 kGE at every point)\n";
  bool mem_dominates = true;
  for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
    const auto b = model.breakdown(n);
    for (int c = 1; c < energy::AreaBreakdown::kComponents; ++c)
      mem_dominates = mem_dominates && b.memory > b.component(c);
  }
  std::cout << "  - 'Most of the area is occupied by latch-based memories': "
            << (mem_dominates ? "PASS" : "FAIL") << "\n";
  const double fixed_share1 =
      model.breakdown(1).streamers / model.total_kge(1) * 100.0;
  const double fixed_share8 =
      model.breakdown(8).streamers / model.total_kge(8) * 100.0;
  std::cout << "  - 'fixed cost of the DMAs is progressively absorbed': "
            << AsciiTable::num(fixed_share1, 1) << "% of total at 1 slice -> "
            << AsciiTable::num(fixed_share8, 1) << "% at 8 slices\n";

  core::SneConfig hw8 = core::SneConfig::paper_design_point(8);
  const double na = model.neuron_area_um2(hw8);
  std::cout << "\nDerived Table II metric — neuron area: "
            << AsciiTable::num(na, 1) << " um2/neuron (paper: 19.9, "
            << bench::deviation(na, 19.9) << ")\n";
  return 0;
}
