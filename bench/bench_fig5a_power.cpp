// Reproduces paper Fig. 5a: "Power consumption at average network firing
// activity of 5%" for 1/2/4/8 slices, split into dynamic and leakage.
//
// Two columns are reported: the analytic worst-case model (the paper's
// methodology — all computational units updating every cycle; anchored at
// 11.29 mW / 8 slices) and the cycle-accurate simulation of the same
// workload, whose small overhead over the analytic value comes from FIRE
// scans and output drains.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "energy/calibration_workload.h"
#include "energy/energy_model.h"

int main() {
  using namespace sne;
  bench::print_header(
      "Fig. 5a", "SNE power consumption vs number of slices",
      "Dense eCNN layer, 100 timesteps, ~5% output activity, 400 MHz, 0.8 V TT");

  AsciiTable table({"Slices", "Dynamic [mW]", "Leakage [mW]",
                    "Total (analytic) [mW]", "Total (simulated) [mW]",
                    "Sim. output act."});
  for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
    energy::EnergyModel model(core::SneConfig::paper_design_point(n));
    const double total = model.dense_power_mw();
    const double leak = model.leakage_power_mw();
    const energy::CalibrationRun run = energy::run_calibration_workload(n, 50);
    const double sim = model.average_power_mw(run.counters);
    table.add_row({std::to_string(n), AsciiTable::num(total - leak, 3),
                   AsciiTable::num(leak, 3), AsciiTable::num(total, 2),
                   AsciiTable::num(sim, 2),
                   AsciiTable::num(run.output_activity * 100.0, 1) + "%"});
  }
  table.print(std::cout);

  std::cout << "\nPower scaling (analytic totals):\n";
  energy::EnergyModel m8(core::SneConfig::paper_design_point(8));
  const double full = m8.dense_power_mw();
  for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
    energy::EnergyModel m(core::SneConfig::paper_design_point(n));
    std::cout << "  " << n << " slice" << (n > 1 ? "s" : " ") << " |"
              << ascii_bar(m.dense_power_mw(), full, 50) << "| "
              << AsciiTable::num(m.dense_power_mw(), 2) << " mW\n";
  }

  std::cout << "\nPaper anchors: 11.29 mW total at 8 slices (Table II); "
               "dynamic power dominates (Fig. 5a).\n";
  std::cout << "Measured: " << AsciiTable::num(full, 2) << " mW at 8 slices ("
            << bench::deviation(full, 11.29) << "); leakage share "
            << AsciiTable::num(m8.leakage_power_mw() / full * 100.0, 1)
            << "%.\n";
  return 0;
}
