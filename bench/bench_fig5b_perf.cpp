// Reproduces paper Fig. 5b: "Performance and energy per operation versus
// Number of Slices" — SOP/s scaling (6.4 -> 51.2 GSOP/s) and pJ/SOP falling
// toward the 0.221 pJ asymptote as fixed costs amortize.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "energy/calibration_workload.h"
#include "energy/energy_model.h"

int main() {
  using namespace sne;
  bench::print_header(
      "Fig. 5b", "SNE performance and energy/SOP vs number of slices",
      "Peak SOP rate (one update per cluster per cycle) and dense-workload "
      "energy per synaptic operation");

  AsciiTable table({"Slices", "Perf (analytic) [GSOP/s]",
                    "Perf (simulated) [GSOP/s]", "E/SOP (analytic) [pJ]",
                    "E/SOP (simulated) [pJ]"});
  for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
    energy::EnergyModel model(core::SneConfig::paper_design_point(n));
    const energy::CalibrationRun run = energy::run_calibration_workload(n, 50);
    table.add_row({std::to_string(n), AsciiTable::num(model.peak_gsops(), 1),
                   AsciiTable::num(model.achieved_gsops(run.counters), 1),
                   AsciiTable::num(model.dense_pj_per_sop(), 3),
                   AsciiTable::num(model.pj_per_sop(run.counters), 3)});
  }
  table.print(std::cout);

  std::cout << "\nPerformance scaling (Fig. 5b left axis):\n";
  for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
    energy::EnergyModel m(core::SneConfig::paper_design_point(n));
    std::cout << "  " << n << " slice" << (n > 1 ? "s" : " ") << " |"
              << ascii_bar(m.peak_gsops(), 51.2, 50) << "| "
              << AsciiTable::num(m.peak_gsops(), 1) << " GSOP/s\n";
  }

  energy::EnergyModel m8(core::SneConfig::paper_design_point(8));
  std::cout << "\nPaper anchors: 51.2 GSOP/s and 0.221 pJ/SOP at 8 slices; "
               "performance scales proportionally to slices (IV-A.3).\n";
  std::cout << "Measured: " << AsciiTable::num(m8.peak_gsops(), 1)
            << " GSOP/s (" << bench::deviation(m8.peak_gsops(), 51.2) << "), "
            << AsciiTable::num(m8.dense_pj_per_sop(), 3) << " pJ/SOP ("
            << bench::deviation(m8.dense_pj_per_sop(), 0.221) << ")\n";
  return 0;
}
