// google-benchmark microbenchmarks of the simulator itself: host-side
// throughput of the cycle-accurate engine, the golden executor and the event
// codec. These do not reproduce paper numbers; they document the cost of
// using this repository (simulated cycles per host-second).
#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "data/synthetic.h"
#include "ecnn/golden.h"
#include "ecnn/runner.h"
#include "event/event.h"

namespace {

using namespace sne;

ecnn::QuantizedLayerSpec bench_layer() {
  ecnn::QuantizedLayerSpec l;
  l.type = ecnn::LayerSpec::Type::kConv;
  l.name = "bench_conv";
  l.in_ch = 2;
  l.in_w = 32;
  l.in_h = 32;
  l.out_ch = 4;
  l.kernel = 3;
  l.stride = 1;
  l.pad = 1;
  l.weights.resize(4 * 2 * 9);
  Rng rng(5);
  for (auto& w : l.weights) w = static_cast<std::int8_t>(rng.uniform_int(-4, 7));
  l.lif.v_th = 6;
  l.lif.leak = 1;
  return l;
}

void BM_EventPackUnpack(benchmark::State& state) {
  Rng rng(1);
  std::vector<event::Event> events(1024);
  for (auto& e : events)
    e = event::Event::update(
        static_cast<std::uint16_t>(rng.uniform_int(0, 255)),
        static_cast<std::uint16_t>(rng.uniform_int(0, 255)),
        static_cast<std::uint8_t>(rng.uniform_int(0, 127)),
        static_cast<std::uint8_t>(rng.uniform_int(0, 127)));
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (const auto& e : events) acc ^= event::pack(e);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_EventPackUnpack);

void BM_GoldenLayer(benchmark::State& state) {
  const auto layer = bench_layer();
  const auto in = data::random_stream(
      {2, 32, 32, 20}, static_cast<double>(state.range(0)) / 1000.0, 99);
  for (auto _ : state) {
    auto trace = ecnn::GoldenExecutor::run_layer(layer, in);
    benchmark::DoNotOptimize(trace.output_events);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.update_count()));
  state.SetLabel("events/iter=" + std::to_string(in.update_count()));
}
BENCHMARK(BM_GoldenLayer)->Arg(10)->Arg(30)->Arg(50);

void BM_CycleAccurateLayer(benchmark::State& state) {
  const auto layer = bench_layer();
  const auto in = data::random_stream({2, 32, 32, 20}, 0.03, 99);
  core::SneConfig hw = core::SneConfig::paper_design_point(
      static_cast<std::uint32_t>(state.range(0)));
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    core::SneEngine engine(hw);
    ecnn::NetworkRunner runner(engine, /*use_wload_stream=*/false);
    ecnn::QuantizedNetwork net;
    net.layers.push_back(layer);
    const auto stats = runner.run(net, in);
    cycles += stats.cycles;
    benchmark::DoNotOptimize(stats.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CycleAccurateLayer)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_GestureGeneration(benchmark::State& state) {
  for (auto _ : state) {
    data::GestureConfig cfg;
    cfg.samples_per_class = 1;
    auto d = data::make_gesture_dataset(cfg);
    benchmark::DoNotOptimize(d.samples.size());
  }
}
BENCHMARK(BM_GestureGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
