// google-benchmark microbenchmarks of the simulator itself: host-side
// throughput of the cycle-accurate engine, the golden executor and the event
// codec. These do not reproduce paper numbers; they document the cost of
// using this repository (simulated cycles per host-second).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <thread>

#include "common/fault_injection.h"
#include "core/engine.h"
#include "data/synthetic.h"
#include "ecnn/batch_runner.h"
#include "ecnn/golden.h"
#include "ecnn/mapper.h"
#include "ecnn/runner.h"
#include "event/event.h"
#include "event/event_io.h"
#include "net/client.h"
#include "net/gateway.h"
#include "obs/adapters.h"
#include "obs/metrics.h"
#include "obs/run_profile.h"
#include "obs/trace.h"
#include "serve/pipeline.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "train/trainer.h"

namespace {

using namespace sne;

// Attaches a RunProfile's per-mode cycle split as plain bench counters so
// BENCH_simthroughput.json records *where* the drain engine spends its
// simulated cycles, not just how fast it retires them.
// scripts/check_perf.py renders these as a warn-only mode-split table.
void attach_profile_counters(benchmark::State& state,
                             const obs::RunProfile& p) {
  const auto c = [](std::uint64_t v) {
    return benchmark::Counter(static_cast<double>(v));
  };
  state.counters["prof_dead_jump"] = c(p.dead_jump_cycles);
  state.counters["prof_sweep_jump"] = c(p.sweep_jump_cycles);
  state.counters["prof_percycle"] = c(p.percycle_cycles);
  state.counters["prof_burst"] = c(p.burst_cycles);
  state.counters["prof_bulk_replay"] = c(p.bulk_replay_cycles);
  state.counters["prof_steady"] = c(p.steady_cycles);
  state.counters["prof_drain_spans"] = c(p.drain_spans);
}

ecnn::QuantizedLayerSpec bench_layer() {
  ecnn::QuantizedLayerSpec l;
  l.type = ecnn::LayerSpec::Type::kConv;
  l.name = "bench_conv";
  l.in_ch = 2;
  l.in_w = 32;
  l.in_h = 32;
  l.out_ch = 4;
  l.kernel = 3;
  l.stride = 1;
  l.pad = 1;
  l.weights.resize(4 * 2 * 9);
  Rng rng(5);
  for (auto& w : l.weights) w = static_cast<std::int8_t>(rng.uniform_int(-4, 7));
  l.lif.v_th = 6;
  l.lif.leak = 1;
  return l;
}

void BM_EventPackUnpack(benchmark::State& state) {
  Rng rng(1);
  std::vector<event::Event> events(1024);
  for (auto& e : events)
    e = event::Event::update(
        static_cast<std::uint16_t>(rng.uniform_int(0, 255)),
        static_cast<std::uint16_t>(rng.uniform_int(0, 255)),
        static_cast<std::uint8_t>(rng.uniform_int(0, 127)),
        static_cast<std::uint8_t>(rng.uniform_int(0, 127)));
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (const auto& e : events) acc ^= event::pack(e);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_EventPackUnpack);

void BM_GoldenLayer(benchmark::State& state) {
  const auto layer = bench_layer();
  const auto in = data::random_stream(
      {2, 32, 32, 20}, static_cast<double>(state.range(0)) / 1000.0, 99);
  for (auto _ : state) {
    auto trace = ecnn::GoldenExecutor::run_layer(layer, in);
    benchmark::DoNotOptimize(trace.output_events);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.update_count()));
  state.SetLabel("events/iter=" + std::to_string(in.update_count()));
}
BENCHMARK(BM_GoldenLayer)->Arg(10)->Arg(30)->Arg(50);

// Arg 0: number of slices; arg 1: SneConfig::fast_forward (1 = default
// fast-forwarding engine, 0 = per-cycle reference path). The two must report
// identical sim_cycles_per_s denominators (cycle counts are bit-identical;
// test_fastforward proves it) — only wall-clock differs.
void BM_CycleAccurateLayer(benchmark::State& state) {
  const auto layer = bench_layer();
  const auto in = data::random_stream({2, 32, 32, 20}, 0.03, 99);
  core::SneConfig hw = core::SneConfig::paper_design_point(
      static_cast<std::uint32_t>(state.range(0)));
  hw.fast_forward = state.range(1) != 0;
  // Engine construction (16 MB memory-model clear) is hoisted out of the
  // timed loop: every run reprograms the slices and starts with an RST
  // event, so reuse is state-equivalent and the loop measures simulation.
  core::SneEngine engine(hw);
  ecnn::NetworkRunner runner(engine, /*use_wload_stream=*/false);
  ecnn::QuantizedNetwork net;
  net.layers.push_back(layer);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto stats = runner.run(net, in);
    cycles += stats.cycles;
    benchmark::DoNotOptimize(stats.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CycleAccurateLayer)
    ->Args({1, 1})->Args({4, 1})->Args({8, 1})
    ->Args({1, 0})->Args({4, 0})->Args({8, 0})
    ->Unit(benchmark::kMillisecond);

// Spike-dense workload measured on the engine core alone: a wide-output
// conv layer (zero threshold, strictly positive weights) makes nearly every
// mapped neuron fire at every scan from a sparse input, so simulated time is
// dominated by the spike drain through the cluster-FIFO -> slice collector
// -> engine collector -> output-DMA chain (one beat per hop per cycle).
// Slices are programmed and the beat program is compiled once outside the
// timed loop; each iteration is one engine.run() (engine reuse is
// state-equivalent: the program starts with an RST wipe). Arg 0: number of
// slices; arg 1: engine mode (0 = per-cycle reference, 1 = PR 1's
// fast-forward only, 2 = fast-forward + batched drain engine); arg 2:
// num_output_dmas (the paper IV-A.3 bandwidth-scaling knob — the D-wide
// steady-state rotation must hold its compression as D grows). All modes
// report identical sim_cycles_per_s denominators (bit-identical cycles, see
// test_fastforward's DrainEquivalence suite); only wall-clock differs.
void BM_DenseSpikingLayer(benchmark::State& state) {
  const auto slices = static_cast<std::uint32_t>(state.range(0));
  ecnn::QuantizedLayerSpec layer;
  layer.type = ecnn::LayerSpec::Type::kConv;
  layer.name = "dense_conv";
  layer.in_ch = 1;
  layer.in_w = 16;
  layer.in_h = 16;
  layer.out_ch = static_cast<std::uint16_t>(4 * slices);  // fills every slice
  layer.kernel = 3;
  layer.stride = 1;
  layer.pad = 1;
  layer.weights.resize(static_cast<std::size_t>(layer.out_ch) * 9);
  Rng rng(5);
  for (auto& w : layer.weights)
    w = static_cast<std::int8_t>(rng.uniform_int(1, 7));
  layer.lif.v_th = 0;
  layer.lif.leak = 1;
  const auto in = data::random_stream({1, 16, 16, 20}, 0.1, 177);

  core::SneConfig hw = core::SneConfig::paper_design_point(slices);
  hw.fast_forward = state.range(1) >= 1;
  hw.drain_batching = state.range(1) >= 2;
  hw.num_output_dmas = static_cast<std::uint32_t>(state.range(2));
  core::SneEngine engine(hw);
  ecnn::Mapper mapper(hw);
  const ecnn::LayerPlan plan = mapper.plan(layer, in.geometry().timesteps);
  if (plan.rounds.size() != 1) {
    state.SkipWithError("layer does not fit a single round");
    return;
  }
  std::vector<std::uint32_t> active;
  for (const ecnn::SlicePass& pass : plan.rounds[0].passes) {
    engine.configure_slice(pass.slice_id, pass.cfg);
    auto& w = engine.slice(pass.slice_id).weights();
    for (const auto& [set, codes] : pass.weight_image)
      for (std::size_t i = 0; i < codes.size(); ++i)
        w.write(set, static_cast<std::uint32_t>(i), codes[i]);
    active.push_back(pass.slice_id);
  }
  core::XbarRoutes routes;
  routes.input_dest = active;
  routes.slice_dest.assign(hw.num_slices,
                           core::SliceRoute{core::SliceRoute::kToMemory});
  engine.set_routes(routes);
  const std::vector<event::Beat> program =
      in.with_control_events(event::FirePolicy::kActiveStepsOnly).to_beats();
  core::RunOptions opts;
  opts.out_geometry = plan.out_geometry;
  // Counter-only measurement (same setting for every mode): the bench
  // times the simulation, not the output-stream decode.
  opts.materialize_output = false;

  std::uint64_t cycles = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto r = engine.run(program, opts);
    cycles += r.cycles;
    events += r.counters.output_events;
    benchmark::DoNotOptimize(r.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["out_events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  // One profiled repeat outside the timed loop: the mode split documents
  // which drain machine earned the throughput above (bitwise-identical
  // results with profiling on, so the run is interchangeable with a timed
  // one — see tests/test_obs.cpp).
  {
    obs::ScopedProfiling profiling;
    const auto r = engine.run(program, opts);
    attach_profile_counters(state, r.profile);
    obs::publish_run_profile(
        obs::MetricsRegistry::instance(), r.profile,
        {{"bench", "dense"},
         {"args", std::to_string(state.range(0)) + "/" +
                      std::to_string(state.range(1)) + "/" +
                      std::to_string(state.range(2))}});
  }
}
BENCHMARK(BM_DenseSpikingLayer)
    ->Args({8, 2, 1})->Args({8, 1, 1})->Args({8, 0, 1})
    ->Args({4, 2, 1})->Args({4, 1, 1})
    // Multi-DMA drain: D grants per cycle through the rotating collector.
    ->Args({8, 2, 2})->Args({8, 1, 2})
    ->Args({8, 2, 4})->Args({8, 1, 4})
    ->Unit(benchmark::kMillisecond);

// Pipeline-routed drain workload: a spike-dense first conv stage chained
// into a second stage through the C-XBAR (paper III-D.5, pipeline operating
// mode). Decode boundaries recur every few cycles on the downstream slice,
// so the batched drain kernel hosts them via the full tick() dispatch
// instead of exiting back to the generic loop — this bench prices exactly
// that path. Arg 0: engine mode (0 = per-cycle reference, 1 = fast-forward,
// 2 = fast-forward + batched drain engine). All modes report identical
// sim_cycles_per_s denominators (DrainEquivalence's pipeline suites pin
// bit-exactness); only wall-clock differs.
void BM_DenseSpikingLayerPipeRouted(benchmark::State& state) {
  const auto stage = [](std::uint16_t in_ch, std::uint16_t out_ch,
                        std::int32_t v_th, std::uint64_t seed) {
    ecnn::QuantizedLayerSpec l;
    l.type = ecnn::LayerSpec::Type::kConv;
    l.name = "stage" + std::to_string(seed);
    l.in_ch = in_ch;
    l.in_w = 16;
    l.in_h = 16;
    l.out_ch = out_ch;
    l.kernel = 3;
    l.stride = 1;
    l.pad = 1;
    l.weights.resize(static_cast<std::size_t>(out_ch) * in_ch * 9);
    Rng rng(seed);
    for (auto& w : l.weights)
      w = static_cast<std::int8_t>(rng.uniform_int(1, 5));
    l.lif.v_th = v_th;
    l.lif.leak = 1;
    return l;
  };
  ecnn::QuantizedNetwork net;
  net.layers.push_back(stage(1, 2, 0, 67));  // dense: fires at every scan
  net.layers.push_back(stage(2, 2, 6, 71));
  const auto in = data::random_stream({1, 16, 16, 16}, 0.15, 177);

  core::SneConfig hw = core::SneConfig::paper_design_point(2);
  hw.fast_forward = state.range(0) >= 1;
  hw.drain_batching = state.range(0) >= 2;
  core::SneEngine engine(hw);
  const auto geom = ecnn::build_pipeline(engine, net, in.geometry().timesteps);
  const std::vector<event::Beat> program =
      in.with_control_events(event::FirePolicy::kActiveStepsOnly).to_beats();
  core::RunOptions opts;
  opts.out_geometry = geom;
  opts.materialize_output = false;

  std::uint64_t cycles = 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto r = engine.run(program, opts);
    cycles += r.cycles;
    events += r.counters.output_events;
    benchmark::DoNotOptimize(r.cycles);
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["out_events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  // Untimed profiled repeat — same rationale as BM_DenseSpikingLayer.
  {
    obs::ScopedProfiling profiling;
    const auto r = engine.run(program, opts);
    attach_profile_counters(state, r.profile);
    obs::publish_run_profile(
        obs::MetricsRegistry::instance(), r.profile,
        {{"bench", "pipe_routed"},
         {"args", std::to_string(state.range(0))}});
  }
}
BENCHMARK(BM_DenseSpikingLayerPipeRouted)
    ->Arg(2)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

// Dataset-level batch simulation: N independent samples simulated across a
// worker pool (arg = worker count; results are bitwise identical for every
// value, see test_fastforward). On a multi-core host throughput scales
// near-linearly until the core count is reached.
void BM_BatchedDataset(benchmark::State& state) {
  const auto layer = bench_layer();
  ecnn::QuantizedNetwork net;
  net.layers.push_back(layer);
  std::vector<event::EventStream> inputs;
  for (std::uint64_t s = 0; s < 16; ++s)
    inputs.push_back(data::random_stream({2, 32, 32, 10}, 0.03, 300 + s));

  ecnn::BatchOptions opts;
  opts.workers = static_cast<unsigned>(state.range(0));
  opts.memory_words = 1u << 20;
  ecnn::BatchRunner runner(core::SneConfig::paper_design_point(4), net, opts);

  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto results = runner.run(inputs);
    for (const auto& r : results) cycles += r.cycles;
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(inputs.size()));
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchedDataset)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// One BPTT training epoch of the flat-tensor trainer on the Fig. 6-style
// topology (paper_topology(2, 32, 32, 4, 6, 32), 24 gesture samples, T = 16).
// Arg 0: neuron model (0 = SNE-LIF, 1 = SRM); arg 1: worker lanes
// (TrainConfig::workers; 1 = sample-serial processing). Minibatch is
// fixed at 4 for every worker count, so the trained weights are bitwise
// identical across all /N variants (test_train_parallel pins this) — only
// wall clock differs. Each iteration trains one epoch from a fresh seeded
// init so per-iteration work stays constant.
void BM_TrainerEpoch(benchmark::State& state) {
  data::GestureConfig gcfg;
  gcfg.classes = 4;
  gcfg.samples_per_class = 6;
  gcfg.timesteps = 16;
  const data::Dataset ds = data::make_gesture_dataset(gcfg);
  const ecnn::Network topo =
      ecnn::Network::paper_topology(2, 32, 32, 4, /*features=*/6,
                                    /*hidden=*/32);
  train::TrainConfig cfg;
  cfg.model = state.range(0) == 0 ? train::NeuronModel::kSneLif
                                  : train::NeuronModel::kSrm;
  cfg.epochs = 1;
  cfg.minibatch = 4;
  cfg.workers = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    train::Trainer trainer(topo, cfg);
    const auto hist = trainer.fit(ds);
    benchmark::DoNotOptimize(hist.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ds.samples.size()));
  state.SetLabel(state.range(0) == 0 ? "model=sne-lif" : "model=srm");
}
BENCHMARK(BM_TrainerEpoch)
    ->Args({0, 1})->Args({0, 2})->Args({0, 4})
    ->Args({1, 1})->Args({1, 4})
    ->UseRealTime()  // worker lanes shift work off the timing thread
    ->Unit(benchmark::kMillisecond);

// Serving throughput: a batch of requests through the sne::serve runtime.
// Arg 0: engines (server workers / pipeline stages); arg 1: execution mode.
//
// Host-loaded weights, 3-layer conv/pool/fc model (PR 4's workload):
//   0 = fresh-construct: every request builds its own engine (pre-pool cost)
//   1 = pooled-reuse, cold: leases reset engines, reprograms every request
//   2 = pipelined sharding, cold: layer ranges on different pooled engines
// Modes 0-2 produce bitwise-identical per-request results (test_serve pins
// it), so sim_cycles_per_s denominators agree — wall clock is the product.
//
// WLOAD-streamed weights, weight-heavy single-conv model (programming
// dominates a request — the weight-resident serving workload):
//   3 = pooled, cold: every request streams the full WLOAD program
//   4 = pooled, warm: weight-resident leases skip the WLOAD phase entirely
//   5 = pipelined, warm: weight-resident stages (deploy-time warmup)
// Modes 3-5 agree on events/spikes and post-programming counters (the
// relaxed equality tier); warm modes report fewer sim cycles because the
// programming phase is simply absent — the 4-vs-3 wall-clock gap is the
// program-once / serve-many win.
//
// Fault-tolerance mode (3-layer host-loaded model again):
//   6 = chaos + shedding: the sne::faults injector is armed with a seeded
//       8% dispatch-failure rule (each failure quarantines an engine and
//       retries within retry_budget), and every 4th request carries an
//       already-expired deadline (shed at admission, never simulated). This
//       prices the hardened serving path under load; mode 1 with the
//       injector disarmed is the contrast that keeps the compiled-in-but-
//       disabled overhead honest.
//
// Multi-tenant mode (3-layer host-loaded model again):
//   7 = multi-tenant-skew: four tenants with Zipf weights (8/4/2/1) and a
//       matching skewed request mix, under the same seeded 8% dispatch
//       chaos as mode 6. This prices the weighted-fair front door
//       (FairScheduler: DRR dispatch, per-tenant ledgers, breaker gates on
//       every admission) against mode 6's single-FIFO chaos baseline and
//       mode 1's clean one.
//
// Network gateway mode (mode 7's workload over real sockets):
//   8 = gateway-loopback: the same four Zipf-weighted tenants, skewed mix
//       and seeded 8% dispatch chaos as mode 7, but every request travels
//       through the HTTP gateway on 127.0.0.1 — one keep-alive client
//       thread per tenant, bodies SNE1-encoded on the wire, cycles read
//       back from the X-Sne-Cycles response header. The 8-vs-7 wall-clock
//       gap prices the whole front door: parsing, auth, socket hops and
//       the IO thread/worker handoff.
void BM_ServeThroughput(benchmark::State& state) {
  const auto engines = static_cast<unsigned>(state.range(0));
  const auto mode = static_cast<int>(state.range(1));
  const bool wload = mode >= 3 && mode <= 5;
  const std::string mode_label = mode == 0   ? "fresh-construct"
                                 : mode == 1 ? "pooled-reuse"
                                 : mode == 2 ? "pipelined"
                                 : mode == 3 ? "wload-cold-pooled"
                                 : mode == 4 ? "wload-warm-pooled"
                                 : mode == 5 ? "wload-warm-pipelined"
                                 : mode == 6 ? "chaos-retry-shed"
                                 : mode == 7 ? "multi-tenant-skew"
                                             : "gateway-loopback";
  ecnn::QuantizedNetwork net;
  if (wload) {
    // 16 input channels x 16 resident output channels per slice at kernel 5
    // fill all 256 weight sets of each slice: 1280 WLOAD beats per pass,
    // against a deliberately sparse input (the request's simulation work).
    ecnn::QuantizedLayerSpec conv;
    conv.type = ecnn::LayerSpec::Type::kConv;
    conv.name = "wload_conv";
    conv.in_ch = 16;
    conv.in_w = 8;
    conv.in_h = 8;
    conv.out_ch = 32;
    conv.kernel = 5;
    conv.stride = 1;
    conv.pad = 2;
    conv.weights.resize(static_cast<std::size_t>(conv.out_ch) * conv.in_ch *
                        conv.kernel * conv.kernel);
    Rng rng(23);
    for (auto& w : conv.weights)
      w = static_cast<std::int8_t>(rng.uniform_int(-4, 7));
    conv.lif.v_th = 100;  // keep the output drain small
    conv.lif.leak = 1;
    net.layers.push_back(conv);
  } else {
    ecnn::QuantizedLayerSpec conv;
    conv.type = ecnn::LayerSpec::Type::kConv;
    conv.name = "conv";
    conv.in_ch = 1;
    conv.in_w = 16;
    conv.in_h = 16;
    conv.out_ch = 8;
    conv.kernel = 3;
    conv.stride = 1;
    conv.pad = 1;
    conv.weights.resize(static_cast<std::size_t>(conv.out_ch) * 9);
    Rng rng(11);
    for (auto& w : conv.weights)
      w = static_cast<std::int8_t>(rng.uniform_int(-4, 7));
    conv.lif.v_th = 4;
    conv.lif.leak = 1;
    net.layers.push_back(conv);

    ecnn::QuantizedLayerSpec pool;
    pool.type = ecnn::LayerSpec::Type::kPool;
    pool.name = "pool";
    pool.in_ch = 8;
    pool.in_w = 16;
    pool.in_h = 16;
    pool.out_ch = 8;
    pool.kernel = 2;
    pool.stride = 2;
    pool.lif.v_th = 0;
    pool.lif.leak = 0;
    net.layers.push_back(pool);

    ecnn::QuantizedLayerSpec fc;
    fc.type = ecnn::LayerSpec::Type::kFc;
    fc.name = "fc";
    fc.in_ch = 8;
    fc.in_w = 8;
    fc.in_h = 8;
    fc.out_ch = 10;
    fc.weights.resize(static_cast<std::size_t>(fc.out_ch) * fc.in_flat());
    for (auto& w : fc.weights)
      w = static_cast<std::int8_t>(rng.uniform_int(-7, 7));
    fc.lif.v_th = 6;
    fc.lif.leak = 1;
    net.layers.push_back(fc);
  }
  std::vector<event::EventStream> inputs;
  for (std::uint64_t s = 0; s < 12; ++s)
    inputs.push_back(wload
                         ? data::random_stream({16, 8, 8, 4}, 0.01, 910 + s)
                         : data::random_stream({1, 16, 16, 10}, 0.08, 910 + s));

  const core::SneConfig hw = core::SneConfig::paper_design_point(2);
  serve::ModelRegistry registry;
  registry.put("m", net);

  std::uint64_t cycles = 0;
  std::uint64_t requests = 0;
  if (mode == 2 || mode == 5) {
    serve::PipelineOptions po;
    po.stages = engines;
    po.use_wload_stream = wload;
    po.weight_resident = mode == 5;
    if (mode == 5)
      po.warmup_timesteps = inputs.front().geometry().timesteps;
    serve::PipelineDeployment deployment(hw, net, po);
    for (auto _ : state) {
      const auto results = deployment.run(inputs);
      for (const auto& r : results) cycles += r.cycles;
      requests += results.size();
      benchmark::DoNotOptimize(results.size());
    }
  } else {
    serve::ServeOptions so;
    so.engines = engines;
    so.reuse_engines = mode != 0;
    so.warm_weights = mode == 4;
    so.use_wload_stream = wload;
    serve::InferenceServer server(registry, hw, so);
    // Zipf-weighted tenants with a matching skewed request mix: the hot
    // tenant holds more than half the traffic AND more than half the fair
    // share, so the DRR ring, ledger updates, and breaker gates all run hot.
    static constexpr unsigned kTenantOf[12] = {0, 0, 0, 0, 0, 0,
                                               1, 1, 1, 2, 2, 3};
    static const std::string kTenantName[4] = {"t0", "t1", "t2", "t3"};
    if (mode == 7 || mode == 8)
      for (unsigned ti = 0; ti < 4; ++ti) {
        serve::TenantConfig tc;
        tc.weight = 8u >> ti;  // 8, 4, 2, 1
        server.register_tenant(kTenantName[ti], tc);
      }
    std::optional<faults::ScopedFaults> chaos;
    if (mode >= 6) {
      faults::FaultConfig cfg;
      cfg.seed = 2026;
      cfg.rules.push_back(
          faults::FaultRule{"serve.server.dispatch", {}, 0.08, 0.0});
      chaos.emplace(std::move(cfg));
    }
    if (mode == 8) {
      net::GatewayConfig gcfg;
      for (unsigned ti = 0; ti < 4; ++ti)
        gcfg.bearer_tokens["tok-" + kTenantName[ti]] = kTenantName[ti];
      net::GatewayServer gateway(server, gcfg);
      std::vector<std::string> bodies;
      for (const auto& in : inputs) bodies.push_back(event::encode_stream(in));
      for (auto _ : state) {
        std::atomic<std::uint64_t> iter_cycles{0};
        std::vector<std::thread> drivers;
        for (unsigned ti = 0; ti < 4; ++ti) {
          drivers.emplace_back([&, ti] {
            // One keep-alive connection per tenant; its requests serialize
            // on it like a real client's would. The gateway closes the
            // connection after a 500 (a chaos failure that outran the retry
            // budget), so the driver reconnects like a real client — at most
            // one fresh attempt per request.
            std::optional<net::HttpClient> c;
            c.emplace("127.0.0.1", gateway.port());
            const std::vector<std::pair<std::string, std::string>> auth = {
                {"Authorization", "Bearer tok-" + kTenantName[ti]}};
            for (std::size_t i = 0; i < bodies.size(); ++i) {
              if (kTenantOf[i] != ti) continue;
              for (int attempt = 0; attempt < 2; ++attempt) {
                try {
                  const net::ClientResponse r = c->request(
                      "POST", "/v1/infer?model=m", auth, bodies[i]);
                  const std::string* cyc = r.header("x-sne-cycles");
                  // Chaos answers (a 500 whose injected failure outran the
                  // retry budget) carry no cycle header and count no work.
                  if (r.status == 200 && cyc != nullptr)
                    iter_cycles.fetch_add(
                        std::strtoull(cyc->c_str(), nullptr, 10));
                  break;
                } catch (const net::NetError&) {
                  c.emplace("127.0.0.1", gateway.port());
                }
              }
            }
          });
        }
        for (auto& d : drivers) d.join();
        cycles += iter_cycles.load();
        requests += inputs.size();
        benchmark::DoNotOptimize(requests);
      }
      const obs::Labels base{{"bench", "serve"}, {"mode", mode_label}};
      obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
      obs::publish_server_stats(reg, server.stats(), base);
      obs::publish_fault_stats(reg, base);
      obs::publish_gateway_stats(reg, gateway.stats(), base);
      state.SetItemsProcessed(static_cast<std::int64_t>(requests));
      state.counters["sim_cycles_per_s"] = benchmark::Counter(
          static_cast<double>(cycles), benchmark::Counter::kIsRate);
      state.SetLabel("mode=" + mode_label);
      return;
    }
    std::vector<serve::Ticket> tickets;
    for (auto _ : state) {
      tickets.clear();
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        serve::RequestOptions ropts;
        if (mode == 6 && i % 4 == 3)
          ropts.deadline = std::chrono::steady_clock::now() -
                           std::chrono::milliseconds(1);
        if (mode == 7) ropts.tenant = kTenantName[kTenantOf[i]];
        tickets.push_back(server.submit("m", inputs[i], ropts));
      }
      for (const auto& t : tickets) {
        try {
          cycles += t.wait().cycles;
        } catch (const serve::DeadlineExceeded&) {
          // shed by design: every 4th request arrives expired
        } catch (const faults::FaultError&) {
          // an injected failure that outran the retry budget
        }
      }
      requests += tickets.size();
      benchmark::DoNotOptimize(tickets.size());
    }
    // Publish the final server snapshot (headline, per-tenant ledgers,
    // engine-pool roll-up) and the fault injector's per-site counters into
    // the process registry. Untimed; the SNE_OBS_PROM / SNE_OBS_METRICS_JSON
    // exports in main() scrape whatever accumulated here.
    const obs::Labels base{{"bench", "serve"}, {"mode", mode_label}};
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    obs::publish_server_stats(reg, server.stats(), base);
    obs::publish_fault_stats(reg, base);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.SetLabel("mode=" + mode_label);
}
BENCHMARK(BM_ServeThroughput)
    ->Args({1, 0})->Args({1, 1})
    ->Args({2, 0})->Args({2, 1})->Args({4, 1})
    ->Args({2, 2})->Args({3, 2})
    // Mode 5's single-layer wload net clamps the deployment to one stage, so
    // the honest arg is 1 — a multi-stage warm-pipeline datapoint needs a
    // multi-layer wload workload first.
    ->Args({1, 3})->Args({1, 4})->Args({2, 3})->Args({2, 4})->Args({1, 5})
    ->Args({2, 6})->Args({2, 7})->Args({2, 8})
    ->UseRealTime()  // dispatch workers shift work off the timing thread
    ->Unit(benchmark::kMillisecond);

void BM_GestureGeneration(benchmark::State& state) {
  for (auto _ : state) {
    data::GestureConfig cfg;
    cfg.samples_per_class = 1;
    auto d = data::make_gesture_dataset(cfg);
    benchmark::DoNotOptimize(d.samples.size());
  }
}
BENCHMARK(BM_GestureGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): stamp the *library under test*'s
// build type into the JSON context. The stock `library_build_type` field
// reports how the google-benchmark library itself was compiled (Debian's
// libbenchmark-dev is a debug build), which says nothing about sne_core;
// scripts/check_perf.py and the committed-baseline policy key off this field
// instead.
//
// Telemetry export, all default-off (the timed loops never touch the
// registry; spans cost one disarmed atomic load each):
//   SNE_OBS_TRACE=<path>         arm the span tracer for the whole run and
//                                write Chrome trace-event JSON at exit
//                                (open in ui.perfetto.dev)
//   SNE_OBS_PROM=<path>          write the metrics registry as Prometheus
//                                text exposition at exit
//   SNE_OBS_METRICS_JSON=<path>  write the registry's JSON snapshot at exit
// scripts/check_obs.py validates all three in CI.
namespace {
const char* obs_env(const char* key) {
  const char* v = std::getenv(key);
  return (v != nullptr && *v != '\0') ? v : nullptr;
}
void obs_dump(const char* path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  out << body;
}
}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext("sne_build_type",
#ifdef NDEBUG
                              "release"
#else
                              "debug"
#endif
  );
  if (obs_env("SNE_OBS_TRACE") != nullptr) sne::obs::Tracer::instance().arm();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (const char* path = obs_env("SNE_OBS_TRACE")) {
    sne::obs::Tracer& tracer = sne::obs::Tracer::instance();
    tracer.disarm();
    obs_dump(path, tracer.chrome_trace_json());
  }
  if (const char* path = obs_env("SNE_OBS_PROM"))
    obs_dump(path, sne::obs::MetricsRegistry::instance().prometheus_text());
  if (const char* path = obs_env("SNE_OBS_METRICS_JSON"))
    obs_dump(path, sne::obs::MetricsRegistry::instance().json_snapshot());
  benchmark::Shutdown();
  return 0;
}
