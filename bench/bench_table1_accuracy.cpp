// Reproduces paper Table I: "eCNN classification accuracy, energy per
// inference and inference rate" on NMNIST and IBM DVS-Gesture.
//
// Protocol (paper section IV-B, reproduced 1:1 on the synthetic datasets):
//  1. train the Fig. 6 topology with the SRM neuron (the SLAYER baseline),
//  2. train the same topology with the SNE linear-leak LIF, quantize to
//     4-bit weights / 8-bit state, and evaluate the *integer* golden model
//     (exactly what executes on the accelerator),
//  3. derive per-inference energy and rate from the measured per-layer
//     activity with the paper's timing method (events x 48 cycles @ 400 MHz,
//     energy = dense power x time).
//
// The synthetic datasets substitute for NMNIST / DVS-Gesture (which cannot
// be redistributed); absolute accuracies are not comparable with the paper,
// but the protocol — SRM baseline vs quantized SNE-LIF at matched topology,
// energy from activity — is. Paper rows are printed for reference.
//
// Environment knobs: SNE_T1_EPOCHS (default 8), SNE_T1_SPC (samples per
// class, default 10), SNE_T1_T (timesteps, default 24), SNE_T1_MB (trainer
// minibatch, default 1 = the serial trajectory bit for bit) and
// SNE_T1_WORKERS (trainer worker lanes, default 0 = the process-wide pool;
// any value produces identical bits for a fixed minibatch).
#include <cstdlib>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "data/synthetic.h"
#include "ecnn/batch_runner.h"
#include "ecnn/golden.h"
#include "ecnn/quantized.h"
#include "energy/energy_model.h"
#include "train/trainer.h"

namespace {

int env_int(const char* name, int def) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : def;
}

struct DatasetResult {
  double srm_acc = 0.0;
  double lif4b_acc = 0.0;
  double energy_lo_uj = 0.0, energy_hi_uj = 0.0;
  double rate_lo = 0.0, rate_hi = 0.0;
  double act_lo = 1.0, act_hi = 0.0;
};

DatasetResult run_protocol(const sne::data::Dataset& full, double train_frac,
                           double val_frac, std::uint16_t classes,
                           std::uint32_t epochs, std::uint32_t minibatch,
                           unsigned workers) {
  using namespace sne;
  const data::DatasetSplit split = full.split(train_frac, val_frac, 2022);
  const auto& g = full.geometry;

  // Scale-adapted Fig. 6: reduced-resolution synthetic inputs keep a 4x4-ish
  // map in front of the classifier (the paper's 144x144 input keeps 9x9).
  const std::uint8_t final_pool = g.width >= 64 ? 4 : 2;
  ecnn::Network topo =
      ecnn::Network::paper_topology(g.channels, g.width, g.height, classes,
                                    /*features=*/8, /*hidden=*/64, final_pool);

  DatasetResult res;

  // --- SRM baseline (SLAYER-default substitute) ---------------------------
  {
    train::TrainConfig cfg;
    cfg.model = train::NeuronModel::kSrm;
    cfg.epochs = epochs;
    cfg.lr = 4e-3;
    cfg.threshold = 1.0;
    cfg.minibatch = minibatch;
    cfg.workers = workers;
    train::Trainer trainer(topo, cfg);
    trainer.calibrate_thresholds(split.train);
    trainer.fit(split.train);
    res.srm_acc = trainer.evaluate(split.test);
  }

  // --- SNE-LIF-4b: train float LIF, quantize, evaluate integer model ------
  ecnn::QuantizedNetwork qnet;
  {
    train::TrainConfig cfg;
    cfg.model = train::NeuronModel::kSneLif;
    cfg.epochs = epochs;
    cfg.lr = 4e-3;
    cfg.threshold = 1.0;
    cfg.leak = 0.08;
    cfg.minibatch = minibatch;
    cfg.workers = workers;
    train::Trainer trainer(topo, cfg);
    trainer.calibrate_thresholds(split.train);
    trainer.fit(split.train);
    qnet = ecnn::quantize(trainer.network());

    std::size_t correct = 0;
    core::SneConfig hw = core::SneConfig::paper_design_point(8);
    energy::EnergyModel model(hw);
    const double power_mw = model.dense_power_mw();
    // Golden-model evaluation batched over the sample dimension
    // (BatchRunner::run_golden): bitwise identical to the former serial
    // loop — the reductions below still run in sample order.
    std::vector<event::EventStream> test_streams;
    test_streams.reserve(split.test.samples.size());
    for (const data::Sample& s : split.test.samples)
      test_streams.push_back(s.stream);
    ecnn::BatchRunner batch(hw, qnet);
    const auto all_traces = batch.run_golden(test_streams);
    for (std::size_t si = 0; si < split.test.samples.size(); ++si) {
      const data::Sample& s = split.test.samples[si];
      const auto& traces = all_traces[si];
      const auto counts =
          ecnn::GoldenExecutor::class_spike_counts(traces.back().output, classes);
      std::size_t pred = 0;
      for (std::size_t k = 1; k < counts.size(); ++k)
        if (counts[k] > counts[pred]) pred = k;
      if (pred == s.label) ++correct;

      // Per-sample network activity and paper-method timing/energy.
      std::size_t events = 0;
      double act_num = 0.0, act_den = 0.0;
      events += s.stream.update_count();
      act_num += static_cast<double>(s.stream.update_count());
      act_den += static_cast<double>(s.stream.geometry().volume());
      for (const auto& tr : traces) {
        events += tr.output_events;
        act_num += static_cast<double>(tr.output_events);
        act_den += static_cast<double>(tr.output.geometry().volume());
      }
      const double act = act_num / act_den;
      const double t_s = static_cast<double>(events) * hw.update_sweep_cycles *
                         hw.cycle_ns() * 1e-9;
      const double e_uj = power_mw * 1e-3 * t_s * 1e6;
      const double rate = 1.0 / t_s;
      res.act_lo = std::min(res.act_lo, act);
      res.act_hi = std::max(res.act_hi, act);
      if (res.energy_hi_uj == 0.0) {
        res.energy_lo_uj = res.energy_hi_uj = e_uj;
        res.rate_lo = res.rate_hi = rate;
      } else {
        res.energy_lo_uj = std::min(res.energy_lo_uj, e_uj);
        res.energy_hi_uj = std::max(res.energy_hi_uj, e_uj);
        res.rate_lo = std::min(res.rate_lo, rate);
        res.rate_hi = std::max(res.rate_hi, rate);
      }
    }
    res.lif4b_acc = static_cast<double>(correct) /
                    static_cast<double>(split.test.samples.size());
  }
  return res;
}

}  // namespace

int main() {
  using namespace sne;
  const std::uint32_t epochs = static_cast<std::uint32_t>(env_int("SNE_T1_EPOCHS", 8));
  const std::uint16_t spc = static_cast<std::uint16_t>(env_int("SNE_T1_SPC", 10));
  const std::uint16_t T = static_cast<std::uint16_t>(env_int("SNE_T1_T", 24));
  const std::uint32_t mb = static_cast<std::uint32_t>(env_int("SNE_T1_MB", 1));
  const unsigned workers =
      static_cast<unsigned>(env_int("SNE_T1_WORKERS", 0));

  bench::print_header(
      "Table I", "eCNN accuracy, energy/inference, inference rate",
      "SRM (SLAYER substitute) vs SNE-LIF-4b on synthetic NMNIST and "
      "synthetic DVS-Gesture; paper split protocols (75/10/15 and 65/10/25)");
  std::cout << "config: epochs=" << epochs << " samples/class=" << spc
            << " timesteps=" << T << " minibatch=" << mb << " workers="
            << workers
            << " (env: SNE_T1_EPOCHS/SNE_T1_SPC/SNE_T1_T/SNE_T1_MB/"
               "SNE_T1_WORKERS)\n";

  data::NmnistConfig ncfg;
  ncfg.samples_per_class = spc;
  ncfg.timesteps = T;
  const data::Dataset nmnist = data::make_nmnist_dataset(ncfg);

  data::GestureConfig gcfg;
  gcfg.samples_per_class = spc;
  gcfg.timesteps = T;
  const data::Dataset gesture = data::make_gesture_dataset(gcfg);

  std::cout << "\n[1/2] synthetic NMNIST (" << nmnist.samples.size()
            << " samples, mean input activity "
            << AsciiTable::num(nmnist.mean_activity() * 100.0, 2) << "%)...\n";
  const DatasetResult nm =
      run_protocol(nmnist, 0.75, 0.10, 10, epochs, mb, workers);
  std::cout << "[2/2] synthetic DVS-Gesture (" << gesture.samples.size()
            << " samples, mean input activity "
            << AsciiTable::num(gesture.mean_activity() * 100.0, 2) << "%)...\n";
  const DatasetResult gs =
      run_protocol(gesture, 0.65, 0.10, 11, epochs, mb, workers);

  AsciiTable table({"Data set", "SNN (SRM)", "eCNN (SNE-LIF-4b)",
                    "Inf. energy [uJ/inf]", "Inf. rate [inf/s]",
                    "Net activity"});
  table.add_row({"synth-NMNIST (ours)",
                 AsciiTable::num(nm.srm_acc * 100.0, 2) + "%",
                 AsciiTable::num(nm.lif4b_acc * 100.0, 2) + "%",
                 AsciiTable::num(nm.energy_lo_uj, 1) + " - " +
                     AsciiTable::num(nm.energy_hi_uj, 1),
                 AsciiTable::num(nm.rate_hi, 0) + " - " +
                     AsciiTable::num(nm.rate_lo, 0),
                 AsciiTable::num(nm.act_lo * 100.0, 1) + "-" +
                     AsciiTable::num(nm.act_hi * 100.0, 1) + "%"});
  table.add_row({"NMNIST (paper)", "97.81%", "97.88%", "43 - 142",
                 "261 - 79.5", "-"});
  table.add_row({"synth-DVS-Gesture (ours)",
                 AsciiTable::num(gs.srm_acc * 100.0, 2) + "%",
                 AsciiTable::num(gs.lif4b_acc * 100.0, 2) + "%",
                 AsciiTable::num(gs.energy_lo_uj, 1) + " - " +
                     AsciiTable::num(gs.energy_hi_uj, 1),
                 AsciiTable::num(gs.rate_hi, 0) + " - " +
                     AsciiTable::num(gs.rate_lo, 0),
                 AsciiTable::num(gs.act_lo * 100.0, 1) + "-" +
                     AsciiTable::num(gs.act_hi * 100.0, 1) + "%"});
  table.add_row({"IBM DVS Gest. (paper)", "92.42%", "92.80%", "80 - 261",
                 "141 - 43", "1.2-4.9%"});
  table.print(std::cout);

  std::cout << "\nProtocol checks:\n";
  const double chance_nm = 100.0 / 10.0, chance_gs = 100.0 / 11.0;
  std::cout << "  - NMNIST: both models well above chance ("
            << AsciiTable::num(chance_nm, 0) << "%): "
            << (nm.srm_acc * 100 > 3 * chance_nm && nm.lif4b_acc * 100 > 3 * chance_nm
                    ? "PASS"
                    : "FAIL")
            << "\n";
  std::cout << "  - Gesture: both models well above chance ("
            << AsciiTable::num(chance_gs, 0) << "%): "
            << (gs.srm_acc * 100 > 3 * chance_gs && gs.lif4b_acc * 100 > 3 * chance_gs
                    ? "PASS"
                    : "FAIL")
            << "\n";
  std::cout << "  - Quantized SNE-LIF-4b tracks the SRM baseline (paper: "
               "within ~0.5 points; ours within 10 points on the synthetic "
               "tasks): "
            << (std::abs(gs.lif4b_acc - gs.srm_acc) < 0.10 &&
                        std::abs(nm.lif4b_acc - nm.srm_acc) < 0.10
                    ? "PASS"
                    : "CHECK")
            << "\n";
  std::cout << "  - Energy band scales with activity band (proportionality): "
            << (gs.energy_hi_uj > gs.energy_lo_uj ? "PASS" : "FAIL") << "\n";
  return 0;
}
