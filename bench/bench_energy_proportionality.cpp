// Reproduces the paper's section IV-B energy-proportionality analysis:
// "a sample extracted by the IBM DVS-Gesture data set generated a firing
// activity between 1.2% and 4.9% ... an input event is consumed in 120 ns
// ... the inference is performed in a best and worst case time interval of
// 7.1 ms and 23.12 ms ... a rate comprised between 141 inf/s and 43 inf/s,
// consuming a total inference energy between 80 uJ/inf and 261 uJ/inf."
//
// The bench sweeps input activity over the paper's band on the Fig. 6
// topology (scaled to the synthetic 32x32 input), derives per-layer event
// counts with the golden executor, and applies the paper's own timing
// method (events x 48 cycles at 400 MHz; energy = dense power x time). The
// cycle-accurate engine cross-checks the two endpoints. Absolute numbers
// differ from the paper (their network is ~144x144, ours 32x32); the
// *shape* — linear time/energy in activity, inverse rate — is the claim
// under reproduction, and the paper's own anchors are printed alongside.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "data/synthetic.h"
#include "ecnn/batch_runner.h"
#include "ecnn/golden.h"
#include "ecnn/quantized.h"
#include "ecnn/runner.h"
#include "energy/energy_model.h"

namespace {

/// Fig. 6 topology (scaled) with random weights and *activity-calibrated*
/// thresholds: each layer's integer threshold is tuned (binary search, at
/// the band midpoint) so its output activity tracks its input activity.
/// Trained SNNs behave this way — inter-layer spike rates stay in a narrow
/// band (the paper measures 1.2-4.9% "across the entire network") — whereas
/// uncalibrated random thresholds make activity amplification super-linear
/// and would distort the proportionality shape this bench reproduces.
sne::ecnn::QuantizedNetwork make_network() {
  using namespace sne;
  ecnn::Network net = ecnn::Network::paper_topology(2, 32, 32, 11, 8, 64);
  Rng rng(1234);
  for (auto& layer : net.layers) {
    if (layer.weights.empty()) continue;
    for (auto& w : layer.weights)
      w = static_cast<float>(rng.uniform(-0.4, 1.0));
    layer.threshold = 2.5f;
    layer.leak = 0.1f;
  }
  ecnn::QuantizedNetwork q = ecnn::quantize(net);

  const auto mid = data::random_stream({2, 32, 32, 50}, 0.03, 777);
  const event::EventStream* input = &mid;
  std::vector<event::EventStream> kept;
  kept.reserve(q.layers.size());
  for (auto& layer : q.layers) {
    if (layer.type != ecnn::LayerSpec::Type::kConv &&
        layer.type != ecnn::LayerSpec::Type::kFc) {
      kept.push_back(ecnn::GoldenExecutor::run_layer(layer, *input).output);
      input = &kept.back();
      continue;
    }
    const double target = input->activity();
    std::int32_t lo = 1, hi = 120;
    while (lo < hi) {  // higher threshold -> lower output activity
      const std::int32_t midth = (lo + hi) / 2;
      layer.lif.v_th = midth;
      const auto trace = ecnn::GoldenExecutor::run_layer(layer, *input);
      if (trace.output.activity() > target)
        lo = midth + 1;
      else
        hi = midth;
    }
    layer.lif.v_th = lo;
    kept.push_back(ecnn::GoldenExecutor::run_layer(layer, *input).output);
    input = &kept.back();
  }
  return q;
}

/// Total spatio-temporal volume (neuron-steps) of all layer *inputs*.
std::size_t s_volume_of_network(const sne::ecnn::QuantizedNetwork& net,
                                std::uint16_t timesteps) {
  std::size_t v = 0;
  for (const auto& l : net.layers) v += l.in_flat() * timesteps;
  return v;
}

}  // namespace

int main() {
  using namespace sne;
  bench::print_header(
      "Section IV-B", "Energy proportionality over the activity band",
      "Fig. 6 topology (32x32-scaled); paper anchors: 1.2% -> 7.1 ms / 80 uJ "
      "/ 141 inf/s, 4.9% -> 23.12 ms / 261 uJ / 43 inf/s");

  const ecnn::QuantizedNetwork net = make_network();
  core::SneConfig hw = core::SneConfig::paper_design_point(8);
  energy::EnergyModel model(hw);
  const double power_mw = model.dense_power_mw();

  AsciiTable table({"Input act.", "Events (all layers)", "t_inf [ms]",
                    "Rate [inf/s]", "E = P*t [uJ/inf]", "E (activity model) [uJ]"});
  std::vector<double> acts = {0.012, 0.02, 0.03, 0.04, 0.049};
  std::vector<double> times_ms, events_n;
  // The activity sweep is point-wise independent: batch the golden runs over
  // the worker pool (BatchRunner::run_golden, bitwise identical to the
  // former serial loop) and reduce in sweep order.
  std::vector<event::EventStream> sweep_inputs;
  for (double act : acts)
    sweep_inputs.push_back(data::random_stream({2, 32, 32, 50}, act, 20240));
  ecnn::BatchRunner batch(hw, net);
  const auto sweep_traces = batch.run_golden(sweep_inputs);
  for (std::size_t ai = 0; ai < acts.size(); ++ai) {
    const double act = acts[ai];
    const auto& traces = sweep_traces[ai];
    std::size_t total_events = 0;
    std::uint64_t total_updates = 0;
    for (const auto& tr : traces) {
      total_events += tr.input_events;
      total_updates += tr.updates;
    }
    const double t_ms = static_cast<double>(total_events) *
                        hw.update_sweep_cycles * hw.cycle_ns() * 1e-6;
    const double rate = 1000.0 / t_ms;
    const double e_pt = power_mw * 1e-3 * t_ms * 1e-3 * 1e6;  // uJ
    // Activity-proportional model: every SOP at the calibrated energy.
    const double e_act =
        static_cast<double>(total_updates) * model.dense_pj_per_sop() * 1e-6;
    times_ms.push_back(t_ms);
    events_n.push_back(static_cast<double>(total_events));
    table.add_row({AsciiTable::num(act * 100.0, 1) + "%",
                   std::to_string(total_events), AsciiTable::num(t_ms, 3),
                   AsciiTable::num(rate, 0), AsciiTable::num(e_pt, 2),
                   AsciiTable::num(e_act, 2)});
  }
  table.print(std::cout);

  // Shape checks: linearity of time vs events (R^2) and proportional span.
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  const double n = static_cast<double>(acts.size());
  for (std::size_t i = 0; i < acts.size(); ++i) {
    sx += acts[i];
    sy += times_ms[i];
    sxx += acts[i] * acts[i];
    sxy += acts[i] * times_ms[i];
    syy += times_ms[i] * times_ms[i];
  }
  const double r = (n * sxy - sx * sy) /
                   std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  std::cout << "\nShape checks:\n";
  std::cout << "  - inference time vs input activity: r = "
            << AsciiTable::num(r, 4) << " (paper claim: proportional; PASS if > 0.99) "
            << (r > 0.99 ? "PASS" : "FAIL") << "\n";
  const double span = times_ms.back() / times_ms.front();
  std::cout << "  - worst/best time ratio: " << AsciiTable::num(span, 2)
            << "x over a " << AsciiTable::num(acts.back() / acts.front(), 2)
            << "x activity span (paper: 3.26x over 4.08x)\n";
  std::cout << "  - paper identity check: 11.29 mW x 7.1 ms = "
            << AsciiTable::num(11.29e-3 * 7.1e-3 * 1e6, 1)
            << " uJ (paper reports 80 uJ); x 23.12 ms = "
            << AsciiTable::num(11.29e-3 * 23.12e-3 * 1e6, 1)
            << " uJ (paper reports 261 uJ)\n";

  // The paper's own best/worst-case method: assume every layer of the
  // network sits at the same activity (1.2% best, 4.9% worst) and charge
  // 48 cycles per event. This isolates the architecture's proportionality
  // from the network's activity-amplification response.
  {
    std::size_t total_volume = s_volume_of_network(net, 50);
    std::cout << "\nPaper-method band (uniform per-layer activity, our "
                 "network volume of "
              << total_volume << " neuron-steps):\n";
    for (double act : {0.012, 0.049}) {
      const double events = static_cast<double>(total_volume) * act;
      const double t_ms =
          events * hw.update_sweep_cycles * hw.cycle_ns() * 1e-6;
      std::cout << "  " << AsciiTable::num(act * 100.0, 1) << "%: "
                << AsciiTable::num(events, 0) << " events, t = "
                << AsciiTable::num(t_ms, 3) << " ms, E = "
                << AsciiTable::num(power_mw * 1e-3 * t_ms * 1e-3 * 1e6, 1)
                << " uJ, rate = " << AsciiTable::num(1000.0 / t_ms, 0)
                << " inf/s\n";
    }
    std::cout << "  -> band ratio exactly 4.08x (the paper reports 3.26x "
                 "because its best/worst per-layer activities are measured, "
                 "not uniform)\n";
  }

  // Cycle-accurate cross-check at the endpoints, both endpoints simulated
  // in parallel on the batch runner (one fresh engine per sample).
  std::cout << "\nCycle-accurate cross-check (time-multiplexed execution, "
               "8 slices):\n";
  const std::vector<event::EventStream> endpoints = {sweep_inputs.front(),
                                                     sweep_inputs.back()};
  const auto endpoint_stats = batch.run(endpoints);
  for (std::size_t k = 0; k < endpoints.size(); ++k) {
    const double act = k == 0 ? acts.front() : acts.back();
    const auto& stats = endpoint_stats[k];
    const auto rep = model.evaluate(stats.total);
    std::cout << "  activity " << AsciiTable::num(act * 100.0, 1)
              << "%: " << stats.total_input_events() << " events, "
              << stats.cycles << " cycles ("
              << AsciiTable::num(static_cast<double>(stats.cycles) * hw.cycle_ns() * 1e-6, 3)
              << " ms wall), energy " << AsciiTable::num(rep.total_uj(), 2)
              << " uJ, paper-method t "
              << AsciiTable::num(
                     stats.paper_method_time_ms(hw.cycle_ns(), hw.update_sweep_cycles), 3)
              << " ms\n";
  }
  std::cout << "\nNote: absolute values scale with network size; the paper's "
               "144x144-class network has ~20x our event volume. Energy is "
               "proportional to events by construction of the architecture — "
               "that proportionality is what this bench verifies.\n";
  return 0;
}
