// Shared helpers for the reproduction benches: each bench prints the paper's
// published numbers next to what this repository measures, in a form that
// can be pasted into EXPERIMENTS.md.
#pragma once

#include <iostream>
#include <string>

#include "common/table.h"

namespace sne::bench {

inline void print_header(const std::string& experiment_id,
                         const std::string& paper_artifact,
                         const std::string& what) {
  std::cout << "\n==================================================================\n"
            << experiment_id << " — " << paper_artifact << "\n"
            << what << "\n"
            << "==================================================================\n";
}

/// Relative deviation as a percentage string, e.g. "+1.3%".
inline std::string deviation(double measured, double paper) {
  if (paper == 0.0) return "n/a";
  const double d = (measured - paper) / paper * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%", d);
  return buf;
}

}  // namespace sne::bench
