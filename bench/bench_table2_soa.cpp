// Reproduces paper Table II: "State of the [art] comparison" — SNE against
// published neuromorphic platforms, plus the 0.9 V extrapolation footnote.
//
// Competitor rows are the numbers printed in the paper (they are literature
// values there too); the SNE row is *measured* from this repository's
// area/energy models, so the bench checks that our reproduction lands on the
// paper's own comparison claims (lowest energy/SOP, highest efficiency,
// 3.55x vs Tianjic).
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/config.h"
#include "energy/area_model.h"
#include "energy/energy_model.h"

int main() {
  using namespace sne;
  bench::print_header("Table II", "State-of-the-art comparison",
                      "SNE row measured from this reproduction; other rows "
                      "as published in the paper");

  core::SneConfig hw = core::SneConfig::paper_design_point(8);
  energy::EnergyModel model(hw);
  energy::AreaModel area;

  const double perf = model.peak_gsops();
  const double eff = model.dense_tsops_per_watt();
  const double pj = model.dense_pj_per_sop();
  const double power = model.dense_power_mw();
  const double neuron_area = area.neuron_area_um2(hw);

  AsciiTable table({"Name", "Tech", "Neuron model", "Type", "Neurons",
                    "Neuron area [um2]", "Perf [GOP/s]", "Eff [TOP/s/W]",
                    "E/SOP [pJ]", "Freq [MHz]", "Power [mW]", "bits", "V"});
  table.add_row({"SNE (this repro)", "22nm", "LIF", "Conv SNN",
                 std::to_string(hw.total_neurons()),
                 AsciiTable::num(neuron_area, 1), AsciiTable::num(perf, 1),
                 AsciiTable::num(eff, 2), AsciiTable::num(pj, 3), "400",
                 AsciiTable::num(power, 2), "4", "0.8"});
  table.add_row({"SNE (paper)", "22nm", "LIF", "Conv SNN", "8192", "19.9",
                 "51.2", "4.54", "0.221", "400", "11.29", "4", "0.8"});
  table.add_row({"Tianjic", "28nm", "-", "Hybrid", "40000", "361", "649",
                 "1.28", "6.18", "300", "950", "8", "0.9"});
  table.add_row({"Dynapsel", "28nm", "-", "analog STDP", "256", "150390", "-",
                 "-", "2", "-", "-", "4", "1"});
  table.add_row({"ODIN", "28nm", "Bio Plaus.", "-", "256", "335.9", "0.038",
                 "0.079", "12.7", "75", "0.477", "-", "0.55"});
  table.add_row({"TrueNorth", "28nm", "EXP LIF", "SNN", "1e6", "389", "58",
                 "0.046", "27", "Asynch", "65", "1", "0.75"});
  table.add_row({"SPOON", "28nm", "-", "Conv SNN", "-", "-", "-", "-", "6.8",
                 "150", "-", "8", "0.6"});
  table.add_row({"Loihi", "14nm", "LIF+", "SNN", "131072", "396.7", "-", "-",
                 "23", "Asynch", "-", "1-64", "-"});
  table.add_row({"SpiNNaker 2", "22nm", "Prog.", "DNN/SNN", "-", "-", "-",
                 "3.26", "1700", "200", "-", "var.", "0.5"});
  table.print(std::cout);

  std::cout << "\nHeadline claims:\n";
  const double vs_tianjic = eff / 1.28;
  std::cout << "  - Energy efficiency vs Tianjic: " << AsciiTable::num(vs_tianjic, 2)
            << "x (paper: 3.55x, " << bench::deviation(vs_tianjic, 3.55)
            << ")\n";
  std::cout << "  - Lowest energy/SOP in the table: "
            << (pj < 2.0 ? "PASS" : "FAIL") << " ("
            << AsciiTable::num(pj, 3) << " pJ vs next-best 2 pJ Dynapsel)\n";
  std::cout << "  - Highest efficiency in the table: "
            << (eff > 3.26 ? "PASS" : "FAIL") << " ("
            << AsciiTable::num(eff, 2)
            << " TSOP/s/W vs next-best 3.26 SpiNNaker 2)\n";

  std::cout << "\n0.9 V extrapolation (paper: 4.03 TOP/s/W, 0.248 pJ/SOP, "
               "linear energy-voltage scaling):\n";
  energy::EnergyModel hv = model.at_voltage(0.9);
  std::cout << "  - measured: " << AsciiTable::num(hv.dense_tsops_per_watt(), 2)
            << " TOP/s/W (" << bench::deviation(hv.dense_tsops_per_watt(), 4.03)
            << "), " << AsciiTable::num(hv.dense_pj_per_sop(), 3) << " pJ/SOP ("
            << bench::deviation(hv.dense_pj_per_sop(), 0.248) << ")\n";
  energy::TechParams quad;
  quad.voltage_scale_exponent = 2.0;
  energy::EnergyModel physics(hw, quad);
  std::cout << "  - for reference, CV^2 (quadratic) scaling would give "
            << AsciiTable::num(physics.at_voltage(0.9).dense_pj_per_sop(), 3)
            << " pJ/SOP — the paper's footnote numbers correspond to linear "
               "scaling (see energy/tech.h)\n";
  return 0;
}
