// Ablation benches for the microarchitectural features DESIGN.md calls out.
// Each ablation isolates one design choice the paper motivates:
//
//   A1  TLU silent-step skip        (III-D.4: "skipping the state update in
//                                    the absence of input activity")
//   A2  Cluster clock gating        (III-D.4: "units that do not have to
//                                    update ... are clock-gated")
//   A3  Double-buffered state       (III-D.4: "practically achieving one
//                                    state update per cycle")
//   A4  Fixed vs adaptive sequencer (the constant 48-cycle event sweep)
//   A5  Cluster output FIFO depth   (III-D.4: FIFOs avoid stalling the scan)
//   A6  Output DMA count            (IV-A.3: more DMAs sustain bandwidth)
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "data/synthetic.h"
#include "ecnn/quantized.h"
#include "ecnn/runner.h"
#include "energy/calibration_workload.h"
#include "energy/energy_model.h"

namespace {

using namespace sne;

/// A bursty sparse stimulus: activity concentrated in a few timesteps, long
/// silences in between — the workload TLU exists for.
event::EventStream bursty_stream() {
  event::EventStream s(event::StreamGeometry{2, 32, 32, 100});
  Rng rng(555);
  for (std::uint16_t burst : {3, 4, 40, 41, 90}) {
    for (int i = 0; i < 40; ++i)
      s.push_update(burst,
                    static_cast<std::uint16_t>(rng.uniform_int(0, 1)),
                    static_cast<std::uint8_t>(rng.uniform_int(0, 31)),
                    static_cast<std::uint8_t>(rng.uniform_int(0, 31)));
  }
  s.normalize();
  return s;
}

ecnn::QuantizedLayerSpec conv_layer() {
  ecnn::QuantizedLayerSpec l;
  l.type = ecnn::LayerSpec::Type::kConv;
  l.name = "abl_conv";
  l.in_ch = 2;
  l.in_w = 32;
  l.in_h = 32;
  l.out_ch = 4;
  l.kernel = 3;
  l.stride = 1;
  l.pad = 1;
  l.weights.resize(4 * 2 * 9);
  Rng rng(77);
  for (auto& w : l.weights) w = static_cast<std::int8_t>(rng.uniform_int(-2, 7));
  l.lif.v_th = 8;
  l.lif.leak = 1;
  return l;
}

struct RunMetrics {
  std::uint64_t cycles = 0;
  double energy_uj = 0.0;
  hwsim::ActivityCounters counters;
};

RunMetrics run_conv(const core::SneConfig& hw, event::FirePolicy policy) {
  core::SneEngine engine(hw);
  ecnn::NetworkRunner runner(engine, /*use_wload_stream=*/false);
  ecnn::QuantizedNetwork net;
  net.layers.push_back(conv_layer());
  const auto stats = runner.run(net, bursty_stream(), policy);
  energy::EnergyModel model(hw);
  RunMetrics m;
  m.cycles = stats.cycles;
  m.energy_uj = model.evaluate(stats.total).total_uj();
  m.counters = stats.total;
  return m;
}

}  // namespace

int main() {
  bench::print_header("Ablations", "Microarchitectural design choices",
                      "Each row toggles one feature of the paper's design on "
                      "a bursty sparse stimulus (5 active of 100 timesteps)");

  // --- A1: TLU / silent-step skip ------------------------------------------
  {
    core::SneConfig hw = core::SneConfig::paper_design_point(4);
    const RunMetrics with_tlu = run_conv(hw, event::FirePolicy::kActiveStepsOnly);
    const RunMetrics without = run_conv(hw, event::FirePolicy::kEveryStep);
    AsciiTable t({"A1: TLU silent-step skip", "Cycles", "Energy [uJ]",
                  "FIRE scans"});
    t.add_row({"enabled (paper)", std::to_string(with_tlu.cycles),
               AsciiTable::num(with_tlu.energy_uj, 4),
               std::to_string(with_tlu.counters.fire_scans)});
    t.add_row({"disabled (fire every step)", std::to_string(without.cycles),
               AsciiTable::num(without.energy_uj, 4),
               std::to_string(without.counters.fire_scans)});
    t.print(std::cout);
    std::cout << "  -> skip saves "
              << AsciiTable::num(
                     (1.0 - static_cast<double>(with_tlu.cycles) /
                                static_cast<double>(without.cycles)) *
                         100.0,
                     1)
              << "% cycles and "
              << AsciiTable::num(
                     (1.0 - with_tlu.energy_uj / without.energy_uj) * 100.0, 1)
              << "% energy on this stimulus; output spikes are identical "
                 "(verified by the test suite).\n\n";
  }

  // --- A2: clock gating -----------------------------------------------------
  {
    core::SneConfig on = core::SneConfig::paper_design_point(4);
    core::SneConfig off = on;
    off.clock_gating = false;
    const RunMetrics a = run_conv(on, event::FirePolicy::kActiveStepsOnly);
    const RunMetrics b = run_conv(off, event::FirePolicy::kActiveStepsOnly);
    AsciiTable t({"A2: cluster clock gating", "Energy [uJ]",
                  "Gated cluster-cycles", "Active cluster-cycles"});
    t.add_row({"enabled (paper)", AsciiTable::num(a.energy_uj, 4),
               std::to_string(a.counters.gated_cluster_cycles),
               std::to_string(a.counters.active_cluster_cycles)});
    t.add_row({"disabled", AsciiTable::num(b.energy_uj, 4),
               std::to_string(b.counters.gated_cluster_cycles),
               std::to_string(b.counters.active_cluster_cycles)});
    t.print(std::cout);
    std::cout << "  -> gating saves "
              << AsciiTable::num((1.0 - a.energy_uj / b.energy_uj) * 100.0, 1)
              << "% energy (timing unchanged: " << a.cycles << " vs "
              << b.cycles << " cycles).\n\n";
  }

  // --- A3: double-buffered state memory -------------------------------------
  {
    core::SneConfig fast = core::SneConfig::paper_design_point(4);
    core::SneConfig slow = fast;
    slow.double_buffered_state = false;
    const RunMetrics a = run_conv(fast, event::FirePolicy::kActiveStepsOnly);
    const RunMetrics b = run_conv(slow, event::FirePolicy::kActiveStepsOnly);
    AsciiTable t({"A3: state memory banking", "Cycles", "Cycles/event"});
    const double ev = static_cast<double>(a.counters.events_consumed) / 4.0;
    t.add_row({"double-buffered (paper)", std::to_string(a.cycles),
               AsciiTable::num(static_cast<double>(a.cycles) / ev, 1)});
    t.add_row({"single-buffered", std::to_string(b.cycles),
               AsciiTable::num(static_cast<double>(b.cycles) / ev, 1)});
    t.print(std::cout);
    std::cout << "  -> double buffering sustains one update per cycle ("
              << AsciiTable::num(static_cast<double>(b.cycles) /
                                     static_cast<double>(a.cycles),
                                 2)
              << "x speedup over single-buffered).\n\n";
  }

  // --- A4: fixed vs adaptive sequencer --------------------------------------
  {
    core::SneConfig fixed = core::SneConfig::paper_design_point(4);
    core::SneConfig adaptive = fixed;
    adaptive.adaptive_sequencer = true;
    const RunMetrics a = run_conv(fixed, event::FirePolicy::kActiveStepsOnly);
    const RunMetrics b = run_conv(adaptive, event::FirePolicy::kActiveStepsOnly);
    AsciiTable t({"A4: sequencer", "Cycles", "SOPs"});
    t.add_row({"fixed 48-cycle sweep (paper)", std::to_string(a.cycles),
               std::to_string(a.counters.neuron_updates)});
    t.add_row({"adaptive row sweep", std::to_string(b.cycles),
               std::to_string(b.counters.neuron_updates)});
    t.print(std::cout);
    std::cout << "  -> an adaptive sequencer would cut "
              << AsciiTable::num(
                     (1.0 - static_cast<double>(b.cycles) /
                                static_cast<double>(a.cycles)) *
                         100.0,
                     1)
              << "% of cycles on 3x3 kernels at equal SOPs — the paper "
                 "chose control simplicity (constant event latency).\n\n";
  }

  // --- A5: cluster FIFO depth ------------------------------------------------
  {
    AsciiTable t({"A5: cluster FIFO depth", "Cycles", "FIRE stall cycles"});
    for (std::uint32_t depth : {1u, 2u, 4u, 8u}) {
      core::SneConfig hw = core::SneConfig::paper_design_point(4);
      hw.cluster_fifo_depth = depth;
      // Low threshold -> dense firing -> pressure on the output FIFOs.
      core::SneEngine engine(hw);
      ecnn::NetworkRunner runner(engine, false);
      ecnn::QuantizedNetwork net;
      net.layers.push_back(conv_layer());
      net.layers[0].lif.v_th = 1;
      const auto stats = runner.run(net, bursty_stream());
      t.add_row({std::to_string(depth), std::to_string(stats.cycles),
                 std::to_string(stats.total.fifo_stall_cycles)});
    }
    t.print(std::cout);
    std::cout << "  -> deeper per-cluster FIFOs absorb firing bursts; the "
                 "paper's choice (4) removes most scan stalls.\n\n";
  }

  // --- A6: output DMA count ---------------------------------------------------
  {
    AsciiTable t({"A6: output DMAs", "Dense-workload cycles",
                  "Simulated pJ/SOP"});
    core::SneConfig hw8 = core::SneConfig::paper_design_point(8);
    energy::EnergyModel model(hw8);
    for (std::uint32_t dmas : {1u, 2u, 4u, 8u}) {
      const auto run = energy::run_calibration_workload(8, 30, 48, dmas);
      t.add_row({std::to_string(dmas), std::to_string(run.cycles),
                 AsciiTable::num(model.pj_per_sop(run.counters), 3)});
    }
    t.print(std::cout);
    std::cout << "  -> with one DMA the collector can throttle dense output "
                 "activity; extra DMAs keep the engine at the 0.22 pJ/SOP "
                 "operating point (paper IV-A.3).\n";
  }
  return 0;
}
